//! The simulator — the paper-shaped façade over the layered engine.
//!
//! [`Simulator::run`] used to *be* the crawl loop; it is now a thin
//! wrapper that assembles the default configuration of the layered
//! engine — a [`UrlQueue`] frontier, a
//! [`crate::event::MetricsSampler`], and (when requested) a
//! [`crate::event::VisitRecorder`] — hands them to
//! [`crate::engine::CrawlEngine`], and packages the result as a
//! [`CrawlReport`]. Its observable behavior is bit-identical to the old
//! monolithic loop (the `engine_parity` integration test pins this).
//! Experiments that want a different frontier or extra observers use
//! the engine directly.

use crate::classifier::Classifier;
use crate::engine::{CrawlEngine, EngineConfig, EngineScratch};
use crate::event::{EventSink, MetricsSampler, VisitRecorder};
use crate::metrics::CrawlReport;
use crate::queue::UrlQueue;
use crate::retry::RetryPolicy;
use crate::sched::SchedConfig;
use crate::strategy::Strategy;
use langcrawl_webgraph::{FaultConfig, WebSpace};

/// Simulation parameters.
#[derive(Debug, Clone, Default)]
pub struct SimConfig {
    /// Stop after this many fetches (`None` = run the queue dry, i.e.
    /// the complete crawl the paper's figures show).
    pub max_pages: Option<u64>,
    /// Record a metrics sample every this many fetches (`None` = pick
    /// ~512 points across the space automatically).
    pub sample_interval: Option<u64>,
    /// Apply the URL extension filter every production crawler runs:
    /// links whose URL names an obviously non-HTML resource (images,
    /// archives — [`langcrawl_webgraph::PageKind::Other`] pages, whose
    /// URLs end in `.gif`) are never enqueued. Dead *HTML-looking* links
    /// (404s) cannot be filtered this way and are still fetched.
    pub url_filter: bool,
    /// Record the ids of crawled pages in
    /// [`crate::metrics::CrawlReport::visited`] (needed by
    /// dataset-collection experiments; off by default to keep reports
    /// small).
    pub record_visits: bool,
    /// Fault model to layer over the space instead of the one it was
    /// generated with ([`WebSpace::fault`]). `None` — the default — uses
    /// the space's own config, so zero-fault spaces behave bit-identically
    /// to the pre-fault simulator. Sensitivity sweeps set this to reuse
    /// one generated space across fault rates.
    pub fault_override: Option<FaultConfig>,
    /// Retry/backoff policy for transient fetch failures.
    pub retry: RetryPolicy,
    /// Virtual-time scheduler configuration. `None` — the default —
    /// runs the legacy single-slot loop over a [`UrlQueue`]; `Some`
    /// runs the event-driven scheduler over a
    /// [`crate::shard::ShardedFrontier`] with that many fetch slots and
    /// per-host politeness. `Some(SchedConfig::default())` (one slot,
    /// zero politeness) produces bit-identical reports to `None` — the
    /// scheduler conformance suite pins this.
    pub sched: Option<SchedConfig>,
    /// Capture a crash-safe snapshot of the crawl every this many ticks
    /// (requires the scheduler; honored when the
    /// `LANGCRAWL_SNAPSHOT_DIR` environment variable names a directory
    /// to write framed snapshot files into). Capture is
    /// observation-only: the crawl is bit-identical with or without it.
    pub snapshot_every: Option<u64>,
}

impl SimConfig {
    /// Cap the crawl at `n` fetches.
    pub fn with_max_pages(mut self, n: u64) -> Self {
        self.max_pages = Some(n);
        self
    }

    /// Enable the URL extension filter (see [`SimConfig::url_filter`]).
    pub fn with_url_filter(mut self) -> Self {
        self.url_filter = true;
        self
    }

    /// Record crawled page ids in the report.
    pub fn with_visit_recording(mut self) -> Self {
        self.record_visits = true;
        self
    }

    /// Layer `fault` over the space for this simulation (see
    /// [`SimConfig::fault_override`]).
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.fault_override = Some(fault);
        self
    }

    /// Use `retry` as the transient-failure retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Run under the virtual-time scheduler with `k` fetch slots (see
    /// [`SimConfig::sched`]).
    pub fn with_workers(mut self, k: u32) -> Self {
        self.sched.get_or_insert_with(SchedConfig::default).slots = k;
        self
    }

    /// Set the per-host politeness gap in ticks (minimum interval
    /// between fetch starts on one host), enabling the scheduler.
    pub fn with_politeness(mut self, gap: u64) -> Self {
        self.sched
            .get_or_insert_with(SchedConfig::default)
            .politeness_gap = gap;
        self
    }

    /// Set the deterministic per-host politeness jitter bound, enabling
    /// the scheduler.
    pub fn with_politeness_spread(mut self, spread: u64) -> Self {
        self.sched
            .get_or_insert_with(SchedConfig::default)
            .politeness_spread = spread;
        self
    }

    /// Set the frontier shard count (`0` = one shard per slot),
    /// enabling the scheduler.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.sched.get_or_insert_with(SchedConfig::default).shards = shards;
        self
    }

    /// Capture a crawl snapshot every `every` ticks (see
    /// [`SimConfig::snapshot_every`]). Forces the scheduler on —
    /// snapshots describe virtual-time loop state.
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.sched.get_or_insert_with(SchedConfig::default);
        self.snapshot_every = Some(every);
        self
    }
}

/// The web crawling simulator.
///
/// ```
/// use langcrawl_core::classifier::MetaClassifier;
/// use langcrawl_core::sim::{SimConfig, Simulator};
/// use langcrawl_core::strategy::SimpleStrategy;
/// use langcrawl_webgraph::GeneratorConfig;
///
/// let space = GeneratorConfig::thai_like().scaled(2_000).build(1);
/// let mut sim = Simulator::new(&space, SimConfig::default());
/// let report = sim.run(
///     &mut SimpleStrategy::soft(),
///     &MetaClassifier::target(space.target_language()),
/// );
/// assert!(report.final_coverage() > 0.95);
/// assert!(report.crawled > 0);
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    ws: &'a WebSpace,
    config: SimConfig,
    /// Engine scratch (admission buffer + attempt table), reused across
    /// runs (see [`CrawlEngine::run_with_scratch`]): repeated `run`
    /// calls — the shape of every experiment sweep — stop paying a
    /// per-run grow-from-empty cycle in the hot loop entirely.
    scratch: EngineScratch,
}

impl<'a> Simulator<'a> {
    /// A simulator over a virtual web space.
    pub fn new(ws: &'a WebSpace, config: SimConfig) -> Self {
        Simulator {
            ws,
            config,
            scratch: EngineScratch::new(),
        }
    }

    /// How many times the reused scratch's attempt table had to
    /// allocate (see [`EngineScratch::attempt_table_allocs`]). At most
    /// one across any number of runs over the same space — the
    /// steady-state regression tests pin this.
    pub fn attempt_table_allocs(&self) -> u64 {
        self.scratch.attempt_table_allocs()
    }

    /// Run one crawl to completion (or to the fetch budget) and return
    /// its report. The simulator is reusable: each `run` starts fresh
    /// from the seeds.
    pub fn run<S, C>(&mut self, strategy: &mut S, classifier: &C) -> CrawlReport
    where
        S: Strategy + ?Sized,
        C: Classifier + ?Sized,
    {
        let ws = self.ws;
        let engine = CrawlEngine::new(
            ws,
            EngineConfig {
                max_pages: self.config.max_pages,
                sample_interval: self.config.sample_interval,
                url_filter: self.config.url_filter,
                fault: self
                    .config
                    .fault_override
                    .clone()
                    .unwrap_or_else(|| ws.fault().clone()),
                retry: self.config.retry,
                snapshot_every: self.config.snapshot_every,
            },
        );
        let mut metrics = MetricsSampler::new();
        let mut visits = VisitRecorder::new();
        let outcome = if self.config.record_visits {
            let mut sinks: [&mut dyn EventSink; 2] = [&mut metrics, &mut visits];
            self.dispatch(&engine, strategy, classifier, &mut sinks)
        } else {
            let mut sinks: [&mut dyn EventSink; 1] = [&mut metrics];
            self.dispatch(&engine, strategy, classifier, &mut sinks)
        };

        CrawlReport {
            strategy: strategy.name(),
            classifier: classifier.name().to_string(),
            samples: metrics.into_samples(),
            crawled: outcome.crawled,
            relevant_crawled: outcome.relevant_crawled,
            total_relevant: ws.total_relevant() as u64,
            max_queue: outcome.max_pending,
            total_pushes: outcome.total_pushes,
            visited: visits.into_visited(),
            attempts: outcome.attempts,
            retries: outcome.retries,
            gave_up: outcome.gave_up,
            ticks: outcome.ticks,
        }
    }

    /// Run through the configured engine path: the legacy single-slot
    /// loop over a [`UrlQueue`] by default, or the virtual-time
    /// scheduler when [`SimConfig::sched`] is set.
    fn dispatch<S, C>(
        &mut self,
        engine: &CrawlEngine<'_>,
        strategy: &mut S,
        classifier: &C,
        sinks: &mut [&mut dyn EventSink],
    ) -> crate::engine::EngineOutcome
    where
        S: Strategy + ?Sized,
        C: Classifier + ?Sized,
    {
        match self.config.sched {
            Some(sched) => engine.run_scheduled_with_scratch(
                &sched,
                strategy,
                classifier,
                sinks,
                &mut self.scratch,
            ),
            None => engine.run_with_scratch(
                UrlQueue::new(engine.web_space().num_pages(), strategy.levels()),
                strategy,
                classifier,
                sinks,
                &mut self.scratch,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{MetaClassifier, OracleClassifier};
    use crate::strategy::{BreadthFirst, LimitedDistanceStrategy, SimpleStrategy};
    use langcrawl_charset::Language;
    use langcrawl_webgraph::GeneratorConfig;

    fn space() -> WebSpace {
        GeneratorConfig::thai_like().scaled(12_000).build(41)
    }

    #[test]
    fn breadth_first_crawls_everything() {
        let ws = space();
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let r = sim.run(
            &mut BreadthFirst::new(),
            &OracleClassifier::target(Language::Thai),
        );
        assert_eq!(
            r.crawled,
            ws.num_pages() as u64,
            "BFS must exhaust the space"
        );
        assert!((r.final_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn soft_focused_reaches_full_coverage() {
        let ws = space();
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let r = sim.run(
            &mut SimpleStrategy::soft(),
            &OracleClassifier::target(Language::Thai),
        );
        assert!(
            (r.final_coverage() - 1.0).abs() < 1e-9,
            "soft coverage {}",
            r.final_coverage()
        );
    }

    #[test]
    fn hard_focused_hits_the_island_ceiling() {
        let ws = space();
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let r = sim.run(
            &mut SimpleStrategy::hard(),
            &OracleClassifier::target(Language::Thai),
        );
        let cov = r.final_coverage();
        assert!(
            (0.5..0.9).contains(&cov),
            "hard coverage {cov} should sit at the ~1-island_mass ceiling"
        );
        // And it must stop early: far fewer fetches than the whole space.
        assert!(r.crawled < ws.num_pages() as u64);
    }

    #[test]
    fn focused_beats_breadth_first_early() {
        let ws = space();
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let oracle = OracleClassifier::target(Language::Thai);
        let quarter = ws.num_pages() as u64 / 4;
        let bf = sim.run(&mut BreadthFirst::new(), &oracle);
        let soft = sim.run(&mut SimpleStrategy::soft(), &oracle);
        let hard = sim.run(&mut SimpleStrategy::hard(), &oracle);
        assert!(
            soft.harvest_at(quarter) > bf.harvest_at(quarter),
            "soft {} vs bf {}",
            soft.harvest_at(quarter),
            bf.harvest_at(quarter)
        );
        assert!(
            hard.harvest_at(quarter) > bf.harvest_at(quarter),
            "hard {} vs bf {}",
            hard.harvest_at(quarter),
            bf.harvest_at(quarter)
        );
    }

    #[test]
    fn soft_queue_dwarfs_hard_queue() {
        let ws = space();
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let oracle = OracleClassifier::target(Language::Thai);
        let soft = sim.run(&mut SimpleStrategy::soft(), &oracle);
        let hard = sim.run(&mut SimpleStrategy::hard(), &oracle);
        // The paper's Fig. 5 shows roughly 8×; on the synthetic space the
        // factor is ~3 (documented in EXPERIMENTS.md) — the property under
        // test is "several-fold", not the exact dataset-specific factor.
        assert!(
            soft.max_queue > 2 * hard.max_queue,
            "soft {} vs hard {}",
            soft.max_queue,
            hard.max_queue
        );
    }

    #[test]
    fn limited_distance_coverage_grows_with_n() {
        let ws = space();
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let oracle = OracleClassifier::target(Language::Thai);
        let mut prev = 0.0;
        for n in [1u8, 2, 3, 4] {
            let r = sim.run(&mut LimitedDistanceStrategy::non_prioritized(n), &oracle);
            let cov = r.final_coverage();
            assert!(
                cov >= prev - 0.02,
                "N={n}: coverage {cov} < previous {prev}"
            );
            prev = cov;
        }
    }

    #[test]
    fn limited_distance_queue_grows_with_n() {
        let ws = space();
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let oracle = OracleClassifier::target(Language::Thai);
        let q1 = sim
            .run(&mut LimitedDistanceStrategy::non_prioritized(1), &oracle)
            .max_queue;
        let q4 = sim
            .run(&mut LimitedDistanceStrategy::non_prioritized(4), &oracle)
            .max_queue;
        assert!(q4 > q1, "N=4 queue {q4} should exceed N=1 queue {q1}");
    }

    #[test]
    fn budget_stops_the_crawl() {
        let ws = space();
        let mut sim = Simulator::new(&ws, SimConfig::default().with_max_pages(500));
        let r = sim.run(
            &mut BreadthFirst::new(),
            &OracleClassifier::target(Language::Thai),
        );
        assert_eq!(r.crawled, 500);
        assert_eq!(r.samples.last().unwrap().crawled, 500);
    }

    #[test]
    fn meta_classifier_misses_some_relevant_pages() {
        // Mislabeling + UTF-8 labels make META-based soft crawling cover
        // slightly less than the oracle, but it still crawls everything
        // (admission doesn't depend on the target's classifier verdict in
        // soft mode).
        let ws = space();
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let r = sim.run(
            &mut SimpleStrategy::soft(),
            &MetaClassifier::target(Language::Thai),
        );
        assert!((r.final_coverage() - 1.0).abs() < 1e-9);
        // Hard mode with META classification: mislabeled pages cut off
        // expansion, so coverage is below the oracle's ceiling.
        let hard_meta = sim.run(
            &mut SimpleStrategy::hard(),
            &MetaClassifier::target(Language::Thai),
        );
        let hard_oracle = sim.run(
            &mut SimpleStrategy::hard(),
            &OracleClassifier::target(Language::Thai),
        );
        assert!(hard_meta.final_coverage() <= hard_oracle.final_coverage() + 1e-9);
    }

    #[test]
    fn samples_are_monotone() {
        let ws = space();
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let r = sim.run(
            &mut SimpleStrategy::soft(),
            &OracleClassifier::target(Language::Thai),
        );
        for w in r.samples.windows(2) {
            assert!(w[1].crawled > w[0].crawled);
            assert!(w[1].relevant >= w[0].relevant);
        }
    }

    #[test]
    fn fault_override_degrades_harvest_but_not_determinism() {
        use langcrawl_webgraph::FaultConfig;
        let ws = space();
        let oracle = OracleClassifier::target(Language::Thai);
        let mut clean_sim = Simulator::new(&ws, SimConfig::default());
        let clean = clean_sim.run(&mut SimpleStrategy::soft(), &oracle);
        let mut faulted_sim = Simulator::new(
            &ws,
            SimConfig::default().with_faults(FaultConfig::with_rate(0.2)),
        );
        let faulted = faulted_sim.run(&mut SimpleStrategy::soft(), &oracle);
        // Dead hosts and exhausted retries cost pages: harvest is net of
        // failures, so a faulted crawl delivers at most the clean count.
        assert!(faulted.relevant_crawled < clean.relevant_crawled);
        assert!(faulted.retries > 0);
        assert_eq!(faulted.attempts, faulted.crawled + faulted.retries);
        // Clean runs report trivial fault counters.
        assert_eq!(clean.attempts, clean.crawled);
        assert_eq!(clean.retries, 0);
        assert_eq!(clean.gave_up, 0);
        // And the faulted schedule is reproducible.
        let again = faulted_sim.run(&mut SimpleStrategy::soft(), &oracle);
        assert_eq!(faulted.samples, again.samples);
        assert_eq!(faulted.retries, again.retries);
    }

    #[test]
    fn attempt_table_allocates_at_most_once_across_runs() {
        use langcrawl_webgraph::FaultConfig;
        let ws = space();
        let oracle = OracleClassifier::target(Language::Thai);
        // Zero-fault runs never materialize the attempt table at all.
        let mut clean = Simulator::new(&ws, SimConfig::default());
        clean.run(&mut SimpleStrategy::soft(), &oracle);
        assert_eq!(clean.attempt_table_allocs(), 0);
        // A faulted run materializes it exactly once; the second run on
        // the same simulator reuses the grown table — zero further
        // attempt-table allocations.
        let mut faulted = Simulator::new(
            &ws,
            SimConfig::default().with_faults(FaultConfig::with_rate(0.2)),
        );
        let first = faulted.run(&mut SimpleStrategy::soft(), &oracle);
        assert!(
            first.retries > 0,
            "fault rate must actually trigger retries"
        );
        let after_first = faulted.attempt_table_allocs();
        assert_eq!(after_first, 1);
        faulted.run(&mut SimpleStrategy::soft(), &oracle);
        assert_eq!(
            faulted.attempt_table_allocs(),
            after_first,
            "second run must not re-grow the attempt table"
        );
    }

    #[test]
    fn deterministic_runs() {
        let ws = space();
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let oracle = OracleClassifier::target(Language::Thai);
        let a = sim.run(&mut SimpleStrategy::soft(), &oracle);
        let b = sim.run(&mut SimpleStrategy::soft(), &oracle);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.crawled, b.crawled);
    }
}
