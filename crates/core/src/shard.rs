//! The host-sharded frontier — BUbiNG's frontier layout in miniature.
//!
//! Production crawlers partition the frontier by host: politeness is a
//! per-host constraint, so the unit of scheduling is the host queue,
//! and hosts are hash-partitioned across shards (agents, in BUbiNG's
//! vocabulary) so discovery traffic can be routed to the shard that
//! owns the link's host. [`ShardedFrontier`] reproduces that layout
//! over the virtual web space while implementing the existing
//! [`Frontier`] trait, so strategies and the admission contract are
//! untouched:
//!
//! * **admission** is global and identical to [`UrlQueue`]: one `best`
//!   key table, one `done` table, `pending()` counts distinct waiting
//!   pages;
//! * **storage** is per-host: every entry lives in its host's parked
//!   queue, always — one index-linked FIFO list per `(host, level)`
//!   slot, with nodes drawn from a single slab ([`Node`]) and recycled
//!   through a free list, so steady-state storage churn allocates
//!   nothing. A host's minimum entry is the head of its lowest
//!   non-empty level list (heads are seq-sorted by construction, since
//!   entries append with a globally increasing seq — the exact
//!   `(level, seq)` minimum the per-host heap used to compute). A ready
//!   host additionally *exposes* a copy of its minimum entry as a token
//!   in the owning shard's avail heap; tokens are disposable — when a
//!   host's minimum changes (better discovery, state transition), a
//!   fresh token is pushed and the old one goes stale, to be discarded
//!   when it surfaces;
//! * **pop order** is the exact global `(priority level, FIFO seq)`
//!   discipline of [`UrlQueue`], *regardless of shard count*: each
//!   ready host exposes exactly its minimum entry, so the minimum over
//!   shard tops is the global minimum, and stale entries are skipped
//!   destructively at pop time just as the FIFO rings skip them. The
//!   shard-parity property test drives this equivalence through random
//!   push/pop/requeue interleavings.
//!
//! The scheduler-facing surface ([`ShardedFrontier::pop_ready`],
//! [`ShardedFrontier::release`], [`ShardedFrontier::advance_to`]) adds
//! per-host state — `Ready`/`Busy`/`Cooling` — on top: a busy or
//! cooling host parks all its entries and exposes nothing, which is
//! how per-host concurrency 1 and politeness gaps are enforced without
//! any scan. With every host permanently ready (the plain [`Frontier`]
//! path), the state machinery is inert.
//!
//! Tie-breaks are total and deterministic everywhere: `(level, seq)`
//! orders entries (seq is the global push ordinal, so FIFO within a
//! level), `(ready_at, host)` orders cool-downs, and shard assignment
//! is a pure hash of the host id.

use crate::frontier::Frontier;
use crate::queue::Entry;
use crate::snapshot::{Dec, Enc, SnapshotError};
use langcrawl_rng::mix;
use langcrawl_webgraph::{PageId, WebSpace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Salt for the host → shard hash. Any fixed constant works; hashing
/// (rather than `host % shards`) decorrelates shard load from the
/// generator's host-id layout, which allocates contiguous id ranges to
/// similar hosts.
const SHARD_SALT: u64 = 0x5ca1_ab1e_0000_0001;

/// Slab sentinel: "no node" for list links and the free-list head.
const NIL: u32 = u32::MAX;

/// Sentinel page marking a detached (free-list) node, so a linear slab
/// scan can tell live parked entries from recycled ones without chasing
/// list links. No real page reaches this id — admission bounds pages by
/// the space size, far below `u32::MAX`.
const FREE_PAGE: PageId = PageId::MAX;

/// One parked entry in the slab: the payload plus the `next` link of
/// its `(host, level)` FIFO list. `seq` is the global push ordinal —
/// unique, so `(level, seq)` totally orders a host's entries and the
/// list head at the lowest non-empty level is the host's minimum.
#[derive(Debug, Clone, Copy)]
struct Node {
    seq: u64,
    page: PageId,
    priority: u8,
    distance: u8,
    /// Next node in this `(host, level)` list, or [`NIL`]. Doubles as
    /// the free-list link when the node is recycled.
    next: u32,
}

/// Per-host scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HostState {
    /// May fetch: its minimum entry (if any) stands in the shard's
    /// avail heap.
    Ready,
    /// A fetch is in flight: per-host concurrency 1 parks everything.
    Busy,
    /// Politeness cool-down: parked until its `ready_at` tick.
    Cooling,
}

/// Per-shard load counters, for the imbalance stats the parallelism
/// sweep reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Accepted pushes routed to this shard.
    pub pushes: u64,
    /// Entries popped from this shard.
    pub pops: u64,
    /// Accepted pushes that arrived from a fetch resolving on another
    /// shard — the cross-shard discovery handoff traffic.
    pub handoffs_in: u64,
}

/// `(level, seq, host, page, priority, distance)` — an exposure token:
/// a disposable copy of one host's parked minimum, ordered by the same
/// `(level, seq)` key as the host heaps.
type AvailToken = (u8, u64, u32, PageId, u8, u8);

/// One shard: the hosts it owns expose their minima here.
#[derive(Debug, Default)]
struct Shard {
    /// Exposure tokens (copies of host minima), live and stale mixed;
    /// staleness is checked against the host's `exposed` marker when a
    /// token surfaces.
    avail: BinaryHeap<Reverse<AvailToken>>,
    /// `(ready_at, host)` for hosts in politeness cool-down.
    cooling: BinaryHeap<Reverse<(u64, u32)>>,
    stats: ShardStats,
}

/// The host-sharded, politeness-aware frontier. See the module docs for
/// the layout; see [`Frontier`] for the admission contract it shares
/// with [`UrlQueue`] and
/// [`crate::frontier::BestFirstFrontier`].
///
/// ```
/// use langcrawl_core::frontier::Frontier;
/// use langcrawl_core::queue::Entry;
/// use langcrawl_core::shard::ShardedFrontier;
///
/// // Four pages on two hosts, two shards.
/// let mut f = ShardedFrontier::new(vec![0, 0, 1, 1], 2, 2, 2);
/// f.push(Entry { page: 2, priority: 1, distance: 0 });
/// f.push(Entry { page: 1, priority: 0, distance: 0 });
/// assert_eq!(f.pop().unwrap().page, 1); // global level order, not per-shard
/// assert_eq!(f.pop().unwrap().page, 2);
/// ```
#[derive(Debug)]
pub struct ShardedFrontier {
    shards: Vec<Shard>,
    /// The parked-entry slab: every waiting entry is a [`Node`] here,
    /// linked into its `(host, level)` FIFO list. Detached nodes move
    /// to the free list and are reused before the slab grows, so
    /// steady-state traffic recycles indices instead of allocating.
    nodes: Vec<Node>,
    /// Head of the free list ([`NIL`] when empty).
    free: u32,
    /// FIFO list heads, indexed `host * num_levels + level`; [`NIL`]
    /// marks an empty list.
    heads: Vec<u32>,
    /// FIFO list tails, same indexing; meaningful only when the
    /// matching head is not [`NIL`].
    tails: Vec<u32>,
    /// `(level, seq)` of the token each host currently exposes in its
    /// shard's avail heap; `None` when the host exposes nothing (busy,
    /// cooling, or empty). Always equals the host's parked minimum when
    /// set. Avail tokens that do not match are stale and simply
    /// discarded — the entries they carry are safe in the slab.
    exposed: Vec<Option<(u8, u64)>>,
    host_state: Vec<HostState>,
    /// Host owning each page.
    host_of_page: Vec<u32>,
    /// Owning shard of each host (pure hash of the host id).
    shard_of_host: Vec<u32>,
    /// Priority levels; priorities at or above clamp into the last
    /// level, exactly like [`UrlQueue`].
    num_levels: usize,
    /// Best admission key per page; `u16::MAX` = never admitted.
    best: Vec<u16>,
    /// Pages fetched already (their stored entries are stale).
    done: Vec<bool>,
    pending: usize,
    max_pending: usize,
    pushes: u64,
    /// Global push ordinal: FIFO tie-break within a level.
    seq: u64,
    /// Host currently resolving a fetch, for handoff attribution.
    origin: Option<u32>,
    /// Total accepted pushes that crossed shards (sum of
    /// [`ShardStats::handoffs_in`]).
    handoffs: u64,
}

impl ShardedFrontier {
    /// A frontier over `num_pages = host_of_page.len()` pages living on
    /// `num_hosts` hosts, with `levels` priority levels, partitioned
    /// into `shards` shards.
    pub fn new(host_of_page: Vec<u32>, num_hosts: usize, levels: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let num_pages = host_of_page.len();
        let levels = levels.max(1);
        ShardedFrontier {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            nodes: Vec::new(),
            free: NIL,
            heads: vec![NIL; num_hosts * levels],
            tails: vec![NIL; num_hosts * levels],
            exposed: vec![None; num_hosts],
            host_state: vec![HostState::Ready; num_hosts],
            host_of_page,
            shard_of_host: (0..num_hosts)
                .map(|h| (mix(SHARD_SALT, h as u64) % shards as u64) as u32)
                .collect(),
            num_levels: levels,
            best: vec![u16::MAX; num_pages],
            done: vec![false; num_pages],
            pending: 0,
            max_pending: 0,
            pushes: 0,
            seq: 0,
            origin: None,
            handoffs: 0,
        }
    }

    /// A frontier over a virtual web space's host table.
    pub fn for_space(ws: &WebSpace, levels: usize, shards: usize) -> Self {
        let host_of_page = ws.page_ids().map(|p| ws.host_id(p)).collect();
        ShardedFrontier::new(host_of_page, ws.num_hosts(), levels, shards)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Host owning a page.
    pub fn host_of(&self, p: PageId) -> u32 {
        // lint:allow(no-panic-transitive): host, level and slab indices are minted by this structure and stay in range by construction
        self.host_of_page[p as usize]
    }

    /// Shard owning a host.
    pub fn shard_of(&self, host: u32) -> usize {
        self.shard_of_host[host as usize] as usize
    }

    /// Per-shard load counters, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats).collect()
    }

    /// Total accepted pushes that crossed shards so far. The scheduler
    /// reads the delta across one resolution to emit
    /// [`crate::event::CrawlEvent::ShardHandoff`].
    pub fn handoffs(&self) -> u64 {
        self.handoffs
    }

    /// Declare the host whose fetch is currently being resolved:
    /// subsequent accepted pushes landing on another shard count as
    /// handoffs. `None` (the initial state) attributes nothing — seed
    /// pushes are not discovery traffic.
    pub fn set_origin(&mut self, host: Option<u32>) {
        self.origin = host;
    }

    /// `UrlQueue`'s level clamp: priorities at or above the level count
    /// share the last ring.
    fn level(&self, e: &Entry) -> u8 {
        (e.priority as usize).min(self.num_levels - 1) as u8
    }

    /// Store an accepted entry on its host (shard stats and handoff
    /// attribution included) and return the host. Does *not* re-expose
    /// the host's minimum — callers follow up with [`Self::refresh`],
    /// either immediately ([`Frontier::push`]) or once per host after a
    /// whole batch landed ([`Frontier::push_all`]).
    // Covered transitively by the root marker on [`Self::push_all`]:
    // nodes come from the free list, so steady-state inserts allocate
    // nothing.
    fn insert(&mut self, e: Entry) -> u32 {
        // lint:allow(no-panic-transitive): host, level and slab indices are minted by this structure and stay in range by construction
        let host = self.host_of_page[e.page as usize];
        let level = self.level(&e);
        let seq = self.seq;
        self.seq += 1;
        let si = self.shard_of_host[host as usize] as usize;
        self.shards[si].stats.pushes += 1;
        if let Some(from) = self.origin {
            if self.shard_of_host[from as usize] as usize != si {
                self.shards[si].stats.handoffs_in += 1;
                self.handoffs += 1;
            }
        }
        let node = Node {
            seq,
            page: e.page,
            priority: e.priority,
            distance: e.distance,
            next: NIL,
        };
        // Recycle a detached node before growing the slab.
        let idx = if self.free != NIL {
            let idx = self.free;
            self.free = self.nodes[idx as usize].next;
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        };
        // Append to the `(host, level)` FIFO list: seqs only grow, so
        // the list stays seq-sorted and its head is the level minimum.
        let slot = host as usize * self.num_levels + level as usize;
        if self.heads[slot] == NIL {
            self.heads[slot] = idx;
        } else {
            self.nodes[self.tails[slot] as usize].next = idx;
        }
        self.tails[slot] = idx;
        host
    }

    /// The host's parked minimum: `(level, seq, node index)` of the
    /// head of its lowest non-empty level list, or `None` when the host
    /// parks nothing. Equivalent to the old per-host heap peek — each
    /// list head is its level's minimum seq, and level dominates seq in
    /// the `(level, seq)` order.
    fn host_min(&self, host: u32) -> Option<(u8, u64, u32)> {
        let base = host as usize * self.num_levels;
        for level in 0..self.num_levels {
            // lint:allow(no-panic-transitive): host, level and slab indices are minted by this structure and stay in range by construction
            let head = self.heads[base + level];
            if head != NIL {
                return Some((level as u8, self.nodes[head as usize].seq, head));
            }
        }
        None
    }

    /// Detach the head of the host's `level` list and recycle its node.
    /// Callers pass the level of a minimum they just consumed.
    fn detach_min(&mut self, host: u32, level: u8) {
        let slot = host as usize * self.num_levels + level as usize;
        // lint:allow(no-panic-transitive): host, level and slab indices are minted by this structure and stay in range by construction
        let idx = self.heads[slot];
        debug_assert_ne!(idx, NIL, "detach_min on an empty list");
        self.heads[slot] = self.nodes[idx as usize].next;
        self.nodes[idx as usize].page = FREE_PAGE;
        self.nodes[idx as usize].next = self.free;
        self.free = idx;
    }

    /// Re-establish the exposure invariant for one host: a `Ready` host
    /// with entries exposes exactly its parked minimum. Pushes a fresh
    /// token when the exposed minimum changed (the previous token, if
    /// any, goes stale and is discarded when it surfaces); no-op for
    /// busy/cooling hosts and when the minimum is already exposed —
    /// which also makes it idempotent, so a batch admission may refresh
    /// each touched host once after the whole batch instead of after
    /// every entry.
    // Covered transitively by the root markers on [`Self::push_all`]
    // and [`Self::pop_inner`], which both land here.
    fn refresh(&mut self, host: u32) {
        // lint:allow(no-panic-transitive): host, level and slab indices are minted by this structure and stay in range by construction
        if self.host_state[host as usize] != HostState::Ready {
            return;
        }
        match self.host_min(host) {
            Some((level, seq, idx)) => {
                if self.exposed[host as usize] != Some((level, seq)) {
                    self.exposed[host as usize] = Some((level, seq));
                    let si = self.shard_of_host[host as usize] as usize;
                    let n = self.nodes[idx as usize];
                    self.shards[si]
                        .avail
                        .push(Reverse((level, seq, host, n.page, n.priority, n.distance)));
                }
            }
            None => self.exposed[host as usize] = None,
        }
    }

    /// Settle shard `si`'s avail top to a live token and return its
    /// `(level, seq)`, discarding stale tokens along the way. `None`
    /// when the shard exposes nothing.
    fn clean_top(&mut self, si: usize) -> Option<(u8, u64)> {
        loop {
            // lint:allow(no-panic-transitive): host, level and slab indices are minted by this structure and stay in range by construction
            let &Reverse((level, seq, host, ..)) = self.shards[si].avail.peek()?;
            if self.exposed[host as usize] == Some((level, seq)) {
                // A live token implies its host is Ready (only
                // `refresh` sets `exposed`, and every transition away
                // from Ready clears it) and that the token mirrors the
                // host's parked minimum.
                return Some((level, seq));
            }
            // Stale token: the host's minimum moved on, or the host
            // left Ready. The entry it carries still lives in the
            // slab, so the copy is just dropped.
            self.shards[si].avail.pop();
        }
    }

    /// Pop the global minimum over ready hosts. `mark_busy` is the
    /// scheduler path: the popped entry's host transitions to `Busy`
    /// (per-host concurrency 1) instead of re-exposing its next entry.
    // lint:root(panic-free, alloc-free) — one call per fetch;
    // stale-token skips recycle slab nodes, never allocate.
    fn pop_inner(&mut self, mark_busy: bool) -> Option<Entry> {
        loop {
            // The minimum over shard tops is the global minimum over
            // ready hosts: each ready host exposes exactly its minimum.
            let mut min: Option<(usize, (u8, u64))> = None;
            for si in 0..self.shards.len() {
                if let Some(k) = self.clean_top(si) {
                    if min.is_none_or(|(_, mk)| k < mk) {
                        min = Some((si, k));
                    }
                }
            }
            let (si, _) = min?;
            let Reverse((level, _, host, page, priority, distance)) =
                // lint:allow(no-panic-transitive): host, level and slab indices are minted by this structure and stay in range by construction
                self.shards[si].avail.pop()?;
            // The live token is a copy of the host's parked minimum;
            // consume the original too.
            self.exposed[host as usize] = None;
            self.detach_min(host, level);
            let e = Entry {
                page,
                priority,
                distance,
            };
            let idx = page as usize;
            if self.done[idx] || key(&e) > self.best[idx] {
                // Stale: fetched already, or superseded by a better
                // admission. Discarded destructively at pop time —
                // exactly when the FIFO rings would have skipped it.
                self.refresh(host);
                continue;
            }
            self.done[idx] = true;
            self.pending -= 1;
            self.shards[si].stats.pops += 1;
            if mark_busy {
                self.host_state[host as usize] = HostState::Busy;
            } else {
                self.refresh(host);
            }
            return Some(e);
        }
    }

    /// Scheduler pop: the global minimum over *ready* hosts, marking
    /// the winning host `Busy`. Busy and cooling hosts expose nothing,
    /// so per-host concurrency 1 and politeness gaps hold by
    /// construction. `None` when every waiting entry belongs to a busy
    /// or cooling host (or the frontier is dry).
    pub fn pop_ready(&mut self) -> Option<Entry> {
        self.pop_inner(true)
    }

    /// Finish a fetch on `host`. `ready_at` is the host's next allowed
    /// fetch start (politeness); at or before `now` the host returns to
    /// `Ready` immediately, otherwise it parks in its shard's cool-down
    /// heap. Returns `true` when the host was parked *with work still
    /// queued* — the politeness-wait signal.
    pub fn release(&mut self, host: u32, ready_at: u64, now: u64) -> bool {
        if ready_at > now {
            // lint:allow(no-panic-transitive): host, level and slab indices are minted by this structure and stay in range by construction
            self.host_state[host as usize] = HostState::Cooling;
            let si = self.shard_of_host[host as usize] as usize;
            self.shards[si].cooling.push(Reverse((ready_at, host)));
            self.host_min(host).is_some()
        } else {
            self.host_state[host as usize] = HostState::Ready;
            self.refresh(host);
            false
        }
    }

    /// Wake every host whose cool-down expires at or before `t`.
    pub fn advance_to(&mut self, t: u64) {
        for si in 0..self.shards.len() {
            // lint:allow(no-panic-transitive): host, level and slab indices are minted by this structure and stay in range by construction
            while let Some(&Reverse((ready_at, host))) = self.shards[si].cooling.peek() {
                if ready_at > t {
                    break;
                }
                self.shards[si].cooling.pop();
                self.host_state[host as usize] = HostState::Ready;
                self.refresh(host);
            }
        }
    }

    /// Earliest tick at which a cooling host wakes, if any — the
    /// scheduler's next candidate time when slots idle.
    pub fn next_cooling(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|s| s.cooling.peek().map(|&Reverse((at, _))| at))
            .min()
    }

    /// Serialize the complete frontier state into a snapshot payload.
    ///
    /// Canonical form, so encode∘decode∘encode is a fixed point:
    /// parked entries as ONE flat list in slab order. A record is
    /// `(page, priority, distance, seq)` — host comes from the page and
    /// level from the priority clamp, so neither is stored, and per-slot
    /// count words (mostly zero, and numerous: hosts × levels of them)
    /// never hit the payload. Decode rebuilds the slab record by
    /// record, so a resumed frontier's slab order *is* the record order
    /// and re-encoding reproduces the bytes; list links are layout,
    /// resorted from `(level, seq)` — the order the live lists held,
    /// since seqs only grow and lists append at tail. Exposure is one
    /// flag per host (an exposed host always exposes exactly its parked
    /// minimum, so the token is derivable); avail heaps are not encoded
    /// at all (stale tokens are behaviorally inert — dropping them
    /// cannot change any observable pop); cool-downs are one globally
    /// sorted `(ready_at, host)` list. `origin` is intentionally not
    /// state: it is only ever `Some` *inside* a resolve, and snapshots
    /// are taken at tick boundaries where no resolve is in flight.
    ///
    /// Capture rides the scheduler's steady state, so the big walks
    /// (parked nodes, per-host flags) stage fixed stack blocks and
    /// append them whole, and the parked scan runs linearly over the
    /// slab ([`FREE_PAGE`] marks holes) instead of chasing list links —
    /// the ≤5% capture-overhead gate prices every cache miss and
    /// per-element capacity check taken here.
    pub(crate) fn encode_state(&self, enc: &mut Enc) {
        enc.u64(self.host_of_page.len() as u64);
        enc.u64(self.exposed.len() as u64);
        enc.u64(self.num_levels as u64);
        enc.u64(self.shards.len() as u64);
        // Flat parked-node list: count patched in after one linear
        // scan. 14 bytes per record via two overlapping u64 stores
        // (the second starts at the seq offset and re-covers the first
        // word's two spare bytes), 18 records per staged block.
        let count_at = enc.mark();
        enc.u64(0);
        let mut n = 0u64;
        let mut block = [0u8; 252];
        let mut fill = 0;
        for node in &self.nodes {
            if node.page == FREE_PAGE {
                continue;
            }
            let w = u64::from(node.page)
                | u64::from(node.priority) << 32
                | u64::from(node.distance) << 40;
            // lint:allow(no-panic-transitive): host, level and slab indices are minted by this structure and stay in range by construction
            block[fill..fill + 8].copy_from_slice(&w.to_le_bytes());
            // lint:allow(no-panic-transitive): host, level and slab indices are minted by this structure and stay in range by construction
            block[fill + 6..fill + 14].copy_from_slice(&node.seq.to_le_bytes());
            fill += 14;
            if fill == block.len() {
                // lint:allow(no-alloc-transitive): capture-time encode: the snapshot buffer is reused and reaches its high-water size once
                enc.buf.extend_from_slice(&block);
                fill = 0;
            }
            n += 1;
        }
        // lint:allow(no-alloc-transitive): capture-time encode: the snapshot buffer is reused and reaches its high-water size once
        enc.buf.extend_from_slice(&block[..fill]);
        enc.patch_u64(count_at, n);
        // Exposure flag + host state, two bytes per host, staged.
        let mut fill = 0;
        for host in 0..self.exposed.len() {
            block[fill] = u8::from(self.exposed[host].is_some());
            block[fill + 1] = match self.host_state[host] {
                HostState::Ready => 0,
                HostState::Busy => 1,
                HostState::Cooling => 2,
            };
            fill += 2;
            if fill == block.len() {
                // lint:allow(no-alloc-transitive): capture-time encode: the snapshot buffer is reused and reaches its high-water size once
                enc.buf.extend_from_slice(&block);
                fill = 0;
            }
        }
        // lint:allow(no-alloc-transitive): capture-time encode: the snapshot buffer is reused and reaches its high-water size once
        enc.buf.extend_from_slice(&block[..fill]);
        let mut cooling: Vec<(u64, u32)> = self
            .shards
            .iter()
            .flat_map(|s| s.cooling.iter().map(|&Reverse(x)| x))
            // lint:allow(no-alloc-transitive): capture-time encode: the snapshot buffer is reused and reaches its high-water size once
            .collect();
        cooling.sort_unstable();
        enc.u64(cooling.len() as u64);
        for (at, host) in cooling {
            enc.u64(at);
            enc.u32(host);
        }
        for s in &self.shards {
            enc.u64(s.stats.pushes);
            enc.u64(s.stats.pops);
            enc.u64(s.stats.handoffs_in);
        }
        enc.u16s(&self.best);
        enc.bools(&self.done);
        enc.u64(self.pending as u64);
        enc.u64(self.max_pending as u64);
        enc.u64(self.pushes);
        enc.u64(self.seq);
        enc.u64(self.handoffs);
    }

    /// Rebuild a frontier from a snapshot payload. The shape arguments
    /// come from the regenerated space and the snapshot header; the
    /// payload must agree with them. Avail heaps are rebuilt from the
    /// exposure flags (each exposed host re-exposes its parked
    /// minimum); structural violations surface as
    /// [`SnapshotError::Malformed`].
    pub(crate) fn decode_state(
        dec: &mut Dec<'_>,
        host_of_page: Vec<u32>,
        num_hosts: usize,
        levels: usize,
        shards: usize,
    ) -> Result<ShardedFrontier, SnapshotError> {
        let mut f = ShardedFrontier::new(host_of_page, num_hosts, levels, shards);
        if dec.len()? != f.host_of_page.len() {
            return Err(SnapshotError::Malformed("frontier page count mismatch"));
        }
        if dec.len()? != num_hosts {
            return Err(SnapshotError::Malformed("frontier host count mismatch"));
        }
        if dec.len()? != f.num_levels {
            return Err(SnapshotError::Malformed("frontier level count mismatch"));
        }
        if dec.len()? != f.shards.len() {
            return Err(SnapshotError::Malformed("frontier shard count mismatch"));
        }
        let n = dec.len()?;
        f.nodes.reserve(n);
        // `(slot, seq, slab index)` for every record: sorting this
        // relinks each `(host, level)` FIFO list in `(level, seq)`
        // order — exactly the order the captured lists held. The slab
        // itself fills in record order, which is what makes re-encoding
        // a fixed point.
        let mut links: Vec<(usize, u64, u32)> = Vec::with_capacity(n);
        for i in 0..n {
            let page = dec.u32()?;
            if page as usize >= f.host_of_page.len() {
                return Err(SnapshotError::Malformed("parked page out of range"));
            }
            let priority = dec.u8()?;
            let distance = dec.u8()?;
            let seq = dec.u64()?;
            let host = f.host_of_page[page as usize];
            let level = (priority as usize).min(f.num_levels - 1);
            links.push((host as usize * f.num_levels + level, seq, i as u32));
            f.nodes.push(Node {
                seq,
                page,
                priority,
                distance,
                next: NIL,
            });
        }
        links.sort_unstable();
        for &(slot, _, idx) in &links {
            if f.heads[slot] == NIL {
                f.heads[slot] = idx;
            } else {
                f.nodes[f.tails[slot] as usize].next = idx;
            }
            f.tails[slot] = idx;
        }
        let mut exposed_flags = vec![false; num_hosts];
        for (host, flag) in exposed_flags.iter_mut().enumerate() {
            *flag = dec.bool()?;
            f.host_state[host] = match dec.u8()? {
                0 => HostState::Ready,
                1 => HostState::Busy,
                2 => HostState::Cooling,
                _ => return Err(SnapshotError::Malformed("host state out of range")),
            };
        }
        for (host, &exposed) in exposed_flags.iter().enumerate() {
            if !exposed {
                continue;
            }
            let Some((level, seq, idx)) = f.host_min(host as u32) else {
                return Err(SnapshotError::Malformed("exposed host parks nothing"));
            };
            f.exposed[host] = Some((level, seq));
            let si = f.shard_of_host[host] as usize;
            let n = f.nodes[idx as usize];
            f.shards[si].avail.push(Reverse((
                level,
                seq,
                host as u32,
                n.page,
                n.priority,
                n.distance,
            )));
        }
        let ncool = dec.len()?;
        for _ in 0..ncool {
            let at = dec.u64()?;
            let host = dec.u32()?;
            if host as usize >= num_hosts {
                return Err(SnapshotError::Malformed("cooling host out of range"));
            }
            let si = f.shard_of_host[host as usize] as usize;
            f.shards[si].cooling.push(Reverse((at, host)));
        }
        for s in &mut f.shards {
            s.stats.pushes = dec.u64()?;
            s.stats.pops = dec.u64()?;
            s.stats.handoffs_in = dec.u64()?;
        }
        for b in &mut f.best {
            *b = dec.u16()?;
        }
        dec.bools(&mut f.done)?;
        f.pending = dec.len()?;
        f.max_pending = dec.len()?;
        f.pushes = dec.u64()?;
        f.seq = dec.u64()?;
        f.handoffs = dec.u64()?;
        Ok(f)
    }
}

/// The shared admission key (identical to `UrlQueue`'s).
fn key(e: &Entry) -> u16 {
    ((e.priority as u16) << 8) | e.distance as u16
}

impl Frontier for ShardedFrontier {
    fn push(&mut self, e: Entry) -> bool {
        let idx = e.page as usize;
        // lint:allow(no-panic-transitive): host, level and slab indices are minted by this structure and stay in range by construction
        if self.done[idx] {
            return false;
        }
        let k = key(&e);
        if k >= self.best[idx] {
            return false; // duplicate or not better
        }
        if self.best[idx] == u16::MAX {
            self.pending += 1;
            self.max_pending = self.max_pending.max(self.pending);
        }
        self.best[idx] = k;
        let host = self.insert(e);
        self.refresh(host);
        self.pushes += 1;
        true
    }

    /// Batched admission with *deferred exposure*: store every accepted
    /// entry first, then refresh each entry's host once. Bit-identical
    /// to per-entry pushes: admission checks, seq assignment, and shard
    /// stats run per entry in order, and the avail heap's `(level, seq,
    /// …)` order is total — the skipped intermediate tokens are exactly
    /// the ones a per-entry push sequence would have staled and
    /// discarded unseen, so the set of *live* tokens after the batch is
    /// the same either way. What the batch saves is one heap push (and
    /// later one stale-skip) per superseded intermediate minimum.
    // lint:root(panic-free, alloc-free) — one call per resolved
    // fetch with outlinks.
    fn push_all(&mut self, entries: &[Entry]) -> u32 {
        let mut enqueued = 0u32;
        for &e in entries {
            let idx = e.page as usize;
            // lint:allow(no-panic-transitive): host, level and slab indices are minted by this structure and stay in range by construction
            if self.done[idx] {
                continue;
            }
            let k = key(&e);
            if k >= self.best[idx] {
                continue; // duplicate or not better
            }
            if self.best[idx] == u16::MAX {
                self.pending += 1;
                self.max_pending = self.max_pending.max(self.pending);
            }
            self.best[idx] = k;
            self.insert(e);
            self.pushes += 1;
            enqueued += 1;
        }
        // One refresh per touched host; idempotent, so refreshing a
        // host once per accepted entry (rather than deduplicating the
        // host list) costs only the repeated no-op check.
        for &e in entries {
            self.refresh(self.host_of_page[e.page as usize]);
        }
        enqueued
    }

    fn pop(&mut self) -> Option<Entry> {
        self.pop_inner(false)
    }

    fn requeue(&mut self, e: Entry) -> bool {
        let idx = e.page as usize;
        // lint:allow(no-panic-transitive): host, level and slab indices are minted by this structure and stay in range by construction
        if !self.done[idx] {
            return self.push(e);
        }
        self.done[idx] = false;
        self.best[idx] = key(&e);
        self.pending += 1;
        self.max_pending = self.max_pending.max(self.pending);
        let host = self.insert(e);
        self.refresh(host);
        self.pushes += 1;
        true
    }

    fn pending(&self) -> usize {
        self.pending
    }

    fn max_pending(&self) -> usize {
        self.max_pending
    }

    fn total_pushes(&self) -> u64 {
        self.pushes
    }

    fn is_done(&self, p: PageId) -> bool {
        self.done[p as usize]
    }

    fn was_admitted(&self, p: PageId) -> bool {
        self.best[p as usize] != u16::MAX
    }
}

/// The plain-`Frontier` face of [`UrlQueue`] and [`ShardedFrontier`]
/// share semantics; re-exported tests pin it, so nothing here.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::UrlQueue;

    fn e(page: PageId, priority: u8, distance: u8) -> Entry {
        Entry {
            page,
            priority,
            distance,
        }
    }

    /// 8 pages spread over 3 hosts (pages 0..3 on host 0, 3..6 on
    /// host 1, 6..8 on host 2).
    fn frontier(shards: usize) -> ShardedFrontier {
        ShardedFrontier::new(vec![0, 0, 0, 1, 1, 1, 2, 2], 3, 4, shards)
    }

    #[test]
    fn global_pop_order_matches_urlqueue_for_any_shard_count() {
        let pushes = [
            e(3, 1, 0),
            e(0, 0, 0),
            e(6, 0, 0),
            e(1, 2, 1),
            e(4, 0, 2),
            e(1, 0, 0), // re-prioritized
            e(7, 3, 0),
        ];
        let mut reference = UrlQueue::new(8, 4);
        for &p in &pushes {
            reference.push(p);
        }
        let want: Vec<Entry> = std::iter::from_fn(|| reference.pop()).collect();
        for shards in [1, 2, 3, 8] {
            let mut f = frontier(shards);
            for &p in &pushes {
                Frontier::push(&mut f, p);
            }
            let got: Vec<Entry> = std::iter::from_fn(|| f.pop()).collect();
            assert_eq!(got, want, "{shards} shards");
        }
    }

    #[test]
    fn busy_host_is_skipped_and_resumes() {
        let mut f = frontier(2);
        f.push(e(0, 0, 0));
        f.push(e(1, 0, 0));
        f.push(e(3, 1, 0));
        // Pop page 0 → host 0 busy; its page 1 is parked, so the next
        // ready entry is host 1's page 3 despite its worse level.
        let first = f.pop_ready().unwrap();
        assert_eq!(first.page, 0);
        assert_eq!(f.pop_ready().unwrap().page, 3);
        assert!(f.pop_ready().is_none(), "both hosts busy");
        // Releasing host 0 with no politeness re-exposes page 1.
        assert!(!f.release(0, 0, 0));
        assert_eq!(f.pop_ready().unwrap().page, 1);
    }

    #[test]
    fn cooling_host_waits_for_advance() {
        let mut f = frontier(1);
        f.push(e(0, 0, 0));
        f.push(e(1, 0, 0));
        assert_eq!(f.pop_ready().unwrap().page, 0);
        // Host 0 owes a gap until tick 5 and still has page 1 queued.
        assert!(f.release(0, 5, 1), "parked with work → politeness wait");
        assert!(f.pop_ready().is_none());
        assert_eq!(f.next_cooling(), Some(5));
        f.advance_to(4);
        assert!(f.pop_ready().is_none(), "gap not yet elapsed");
        f.advance_to(5);
        assert_eq!(f.pop_ready().unwrap().page, 1);
        assert_eq!(f.next_cooling(), None);
    }

    #[test]
    fn handoffs_attribute_cross_shard_pushes() {
        // The shard hash is opaque: find a shard count under which two
        // fixture hosts land on different shards, and a page on each.
        let (shards, home, away) = (2..=16usize)
            .find_map(|n| {
                let probe = frontier(n);
                (0..3u32)
                    .flat_map(|a| (0..3u32).map(move |b| (a, b)))
                    .find(|&(a, b)| probe.shard_of(a) != probe.shard_of(b))
                    .map(|(a, b)| (n, a, b))
            })
            .expect("some shard count must separate the fixture hosts");
        let page_on = |h: u32| [0u32, 3, 6][h as usize];
        let mut f = frontier(shards);
        f.set_origin(Some(home));
        f.push(e(page_on(away), 0, 0)); // crosses shards
        f.push(e(page_on(home), 1, 0)); // stays home
        assert_eq!(f.handoffs(), 1);
        let stats = f.shard_stats();
        assert_eq!(stats.iter().map(|s| s.handoffs_in).sum::<u64>(), 1);
        assert_eq!(stats.iter().map(|s| s.pushes).sum::<u64>(), 2);
        f.set_origin(None);
        f.push(e(7, 0, 0)); // no origin: seeds never count
        assert_eq!(f.handoffs(), 1);
    }

    #[test]
    fn requeue_matches_urlqueue_semantics() {
        let mut f = frontier(2);
        f.push(e(2, 0, 0));
        f.pop().unwrap();
        assert!(!f.push(e(2, 0, 0)), "push refuses done pages");
        assert!(f.requeue(e(2, 1, 0)));
        assert!(!f.is_done(2));
        assert_eq!(f.pending(), 1);
        let again = f.pop().unwrap();
        assert_eq!((again.page, again.priority), (2, 1));
        assert!(f.pop().is_none());
    }

    #[test]
    fn accounting_matches_urlqueue_semantics() {
        let mut f = frontier(3);
        for p in 0..5 {
            f.push(e(p, 0, 0));
        }
        assert_eq!(f.pending(), 5);
        assert_eq!(f.max_pending(), 5);
        f.pop();
        f.pop();
        assert_eq!(f.pending(), 3);
        assert_eq!(f.max_pending(), 5);
        assert_eq!(f.total_pushes(), 5);
        let stats = f.shard_stats();
        assert_eq!(stats.iter().map(|s| s.pushes).sum::<u64>(), 5);
        assert_eq!(stats.iter().map(|s| s.pops).sum::<u64>(), 2);
    }

    #[test]
    fn out_of_range_priority_clamped_to_last_level() {
        // 4 levels: priority 9 lands in level 3, behind everything
        // better but ahead of nothing — exactly UrlQueue's clamp.
        let mut reference = UrlQueue::new(8, 4);
        let mut f = frontier(2);
        for q in [&mut reference as &mut dyn Frontier, &mut f] {
            q.push(e(0, 9, 0)); // clamps into level 3
            q.push(e(3, 2, 0));
            q.push(e(6, 0, 0));
        }
        let want: Vec<Entry> = std::iter::from_fn(|| reference.pop()).collect();
        let got: Vec<Entry> = std::iter::from_fn(|| f.pop()).collect();
        assert_eq!(got, want);
        let pages: Vec<PageId> = got.iter().map(|x| x.page).collect();
        assert_eq!(pages, vec![6, 3, 0], "clamped entry pops last");
    }

    #[test]
    fn readmission_at_higher_priority_on_a_busy_host() {
        let mut f = frontier(2);
        f.push(e(0, 0, 0));
        f.push(e(1, 2, 0));
        f.push(e(3, 1, 0));
        // Fetch page 0 → host 0 goes busy with page 1 still parked.
        assert_eq!(f.pop_ready().unwrap().page, 0);
        // While the host is busy, page 1 is re-discovered at a better
        // priority. The promotion must survive the parked state.
        assert!(f.push(e(1, 0, 0)));
        assert_eq!(f.pending(), 2, "promotion is not a new distinct URL");
        assert_eq!(f.pop_ready().unwrap().page, 3, "busy host still skipped");
        assert!(!f.release(0, 0, 0));
        let p1 = f.pop_ready().unwrap();
        assert_eq!((p1.page, p1.priority), (1, 0), "promoted entry pops");
        assert!(f.pop_ready().is_none());
    }

    #[test]
    fn releasing_an_emptied_host_drops_its_exposure() {
        let mut f = frontier(1);
        f.push(e(0, 0, 0));
        f.push(e(3, 0, 0));
        assert_eq!(f.pop_ready().unwrap().page, 0);
        // Host 0 has nothing left: it still parks (politeness gaps are
        // start-to-start, work or not) but release reports no parked
        // work, and no exposure token lingers for the emptied host.
        assert!(!f.release(0, 10, 1), "empty host is not parked-with-work");
        assert_eq!(f.next_cooling(), Some(10), "the gap itself still applies");
        assert_eq!(f.pop_ready().unwrap().page, 3);
        f.advance_to(10);
        assert!(f.pop_ready().is_none(), "woken empty host exposes nothing");
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn same_shard_pushes_never_count_as_handoffs() {
        let mut f = frontier(1); // one shard: every host lands on it
        f.set_origin(Some(1));
        f.push(e(0, 0, 0)); // host 0, same shard as origin host 1
        f.push(e(4, 0, 0)); // origin's own host
        assert_eq!(f.handoffs(), 0, "intra-shard discovery is not a handoff");
        let stats = f.shard_stats();
        assert_eq!(stats.iter().map(|s| s.handoffs_in).sum::<u64>(), 0);
        assert_eq!(stats.iter().map(|s| s.pushes).sum::<u64>(), 2);
    }

    #[test]
    fn push_all_matches_per_entry_pushes() {
        let batch = [
            e(3, 1, 0),
            e(0, 0, 0),
            e(6, 0, 0),
            e(1, 2, 1),
            e(1, 0, 0), // re-prioritized within the batch
            e(3, 1, 0), // duplicate within the batch
            e(7, 9, 0), // clamped level
        ];
        for shards in [1, 2, 3] {
            let mut one_by_one = frontier(shards);
            let mut accepted = 0u32;
            for &p in &batch {
                if Frontier::push(&mut one_by_one, p) {
                    accepted += 1;
                }
            }
            let mut batched = frontier(shards);
            assert_eq!(batched.push_all(&batch), accepted, "{shards} shards");
            assert_eq!(batched.pending(), one_by_one.pending());
            assert_eq!(batched.total_pushes(), one_by_one.total_pushes());
            let want: Vec<Entry> = std::iter::from_fn(|| one_by_one.pop()).collect();
            let got: Vec<Entry> = std::iter::from_fn(|| batched.pop()).collect();
            assert_eq!(got, want, "{shards} shards");
        }
    }

    #[test]
    fn reprioritization_supersedes_the_representative() {
        let mut f = frontier(1);
        assert!(f.push(e(1, 2, 0)));
        assert!(f.push(e(0, 3, 0)));
        // Page 1 re-discovered at a better priority: the old exposure
        // token goes stale and the better entry is exposed instead.
        assert!(f.push(e(1, 0, 0)));
        assert_eq!(f.pending(), 2);
        assert_eq!(f.pop().unwrap(), e(1, 0, 0));
        assert_eq!(f.pop().unwrap(), e(0, 3, 0));
        assert!(f.pop().is_none(), "stale duplicate skipped");
    }
}
