//! The host-sharded frontier — BUbiNG's frontier layout in miniature.
//!
//! Production crawlers partition the frontier by host: politeness is a
//! per-host constraint, so the unit of scheduling is the host queue,
//! and hosts are hash-partitioned across shards (agents, in BUbiNG's
//! vocabulary) so discovery traffic can be routed to the shard that
//! owns the link's host. [`ShardedFrontier`] reproduces that layout
//! over the virtual web space while implementing the existing
//! [`Frontier`] trait, so strategies and the admission contract are
//! untouched:
//!
//! * **admission** is global and identical to [`UrlQueue`]: one `best`
//!   key table, one `done` table, `pending()` counts distinct waiting
//!   pages;
//! * **storage** is per-host: every entry lives in its host's parked
//!   heap, always. A ready host additionally *exposes* a copy of its
//!   minimum entry as a token in the owning shard's avail heap; tokens
//!   are disposable — when a host's minimum changes (better discovery,
//!   state transition), a fresh token is pushed and the old one goes
//!   stale, to be discarded when it surfaces;
//! * **pop order** is the exact global `(priority level, FIFO seq)`
//!   discipline of [`UrlQueue`], *regardless of shard count*: each
//!   ready host exposes exactly its minimum entry, so the minimum over
//!   shard tops is the global minimum, and stale entries are skipped
//!   destructively at pop time just as the FIFO rings skip them. The
//!   shard-parity property test drives this equivalence through random
//!   push/pop/requeue interleavings.
//!
//! The scheduler-facing surface ([`ShardedFrontier::pop_ready`],
//! [`ShardedFrontier::release`], [`ShardedFrontier::advance_to`]) adds
//! per-host state — `Ready`/`Busy`/`Cooling` — on top: a busy or
//! cooling host parks all its entries and exposes nothing, which is
//! how per-host concurrency 1 and politeness gaps are enforced without
//! any scan. With every host permanently ready (the plain [`Frontier`]
//! path), the state machinery is inert.
//!
//! Tie-breaks are total and deterministic everywhere: `(level, seq)`
//! orders entries (seq is the global push ordinal, so FIFO within a
//! level), `(ready_at, host)` orders cool-downs, and shard assignment
//! is a pure hash of the host id.

use crate::frontier::Frontier;
use crate::queue::Entry;
use langcrawl_rng::mix;
use langcrawl_webgraph::{PageId, WebSpace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Salt for the host → shard hash. Any fixed constant works; hashing
/// (rather than `host % shards`) decorrelates shard load from the
/// generator's host-id layout, which allocates contiguous id ranges to
/// similar hosts.
const SHARD_SALT: u64 = 0x5ca1_ab1e_0000_0001;

/// A stored entry: `(level, seq)` is the total order, the tail carries
/// the entry payload. `seq` is unique, so comparisons never reach the
/// payload and ordering is a pure function of push history.
type Slot = (u8, u64, PageId, u8, u8);

/// Per-host scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HostState {
    /// May fetch: its minimum entry (if any) stands in the shard's
    /// avail heap.
    Ready,
    /// A fetch is in flight: per-host concurrency 1 parks everything.
    Busy,
    /// Politeness cool-down: parked until its `ready_at` tick.
    Cooling,
}

/// One host's queue. Every entry of the host lives in `parked` until it
/// is popped; the avail heap only ever holds *copies*.
#[derive(Debug, Default)]
struct HostQueue {
    parked: BinaryHeap<Reverse<Slot>>,
    /// `(level, seq)` of the token this host currently exposes in its
    /// shard's avail heap; `None` when the host exposes nothing (busy,
    /// cooling, or empty). Always equals `parked`'s minimum when set.
    /// Avail tokens that do not match are stale and simply discarded —
    /// the entries they carry are safe in `parked`.
    exposed: Option<(u8, u64)>,
}

/// Per-shard load counters, for the imbalance stats the parallelism
/// sweep reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Accepted pushes routed to this shard.
    pub pushes: u64,
    /// Entries popped from this shard.
    pub pops: u64,
    /// Accepted pushes that arrived from a fetch resolving on another
    /// shard — the cross-shard discovery handoff traffic.
    pub handoffs_in: u64,
}

/// `(level, seq, host, page, priority, distance)` — an exposure token:
/// a disposable copy of one host's parked minimum, ordered by the same
/// `(level, seq)` key as the host heaps.
type AvailToken = (u8, u64, u32, PageId, u8, u8);

/// One shard: the hosts it owns expose their minima here.
#[derive(Debug, Default)]
struct Shard {
    /// Exposure tokens (copies of host minima), live and stale mixed;
    /// staleness is checked against the host's `exposed` marker when a
    /// token surfaces.
    avail: BinaryHeap<Reverse<AvailToken>>,
    /// `(ready_at, host)` for hosts in politeness cool-down.
    cooling: BinaryHeap<Reverse<(u64, u32)>>,
    stats: ShardStats,
}

/// The host-sharded, politeness-aware frontier. See the module docs for
/// the layout; see [`Frontier`] for the admission contract it shares
/// with [`UrlQueue`] and
/// [`crate::frontier::BestFirstFrontier`].
///
/// ```
/// use langcrawl_core::frontier::Frontier;
/// use langcrawl_core::queue::Entry;
/// use langcrawl_core::shard::ShardedFrontier;
///
/// // Four pages on two hosts, two shards.
/// let mut f = ShardedFrontier::new(vec![0, 0, 1, 1], 2, 2, 2);
/// f.push(Entry { page: 2, priority: 1, distance: 0 });
/// f.push(Entry { page: 1, priority: 0, distance: 0 });
/// assert_eq!(f.pop().unwrap().page, 1); // global level order, not per-shard
/// assert_eq!(f.pop().unwrap().page, 2);
/// ```
#[derive(Debug)]
pub struct ShardedFrontier {
    shards: Vec<Shard>,
    hosts: Vec<HostQueue>,
    host_state: Vec<HostState>,
    /// Host owning each page.
    host_of_page: Vec<u32>,
    /// Owning shard of each host (pure hash of the host id).
    shard_of_host: Vec<u32>,
    /// Priority levels; priorities at or above clamp into the last
    /// level, exactly like [`UrlQueue`].
    num_levels: usize,
    /// Best admission key per page; `u16::MAX` = never admitted.
    best: Vec<u16>,
    /// Pages fetched already (their stored entries are stale).
    done: Vec<bool>,
    pending: usize,
    max_pending: usize,
    pushes: u64,
    /// Global push ordinal: FIFO tie-break within a level.
    seq: u64,
    /// Host currently resolving a fetch, for handoff attribution.
    origin: Option<u32>,
    /// Total accepted pushes that crossed shards (sum of
    /// [`ShardStats::handoffs_in`]).
    handoffs: u64,
}

impl ShardedFrontier {
    /// A frontier over `num_pages = host_of_page.len()` pages living on
    /// `num_hosts` hosts, with `levels` priority levels, partitioned
    /// into `shards` shards.
    pub fn new(host_of_page: Vec<u32>, num_hosts: usize, levels: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let num_pages = host_of_page.len();
        ShardedFrontier {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            hosts: (0..num_hosts).map(|_| HostQueue::default()).collect(),
            host_state: vec![HostState::Ready; num_hosts],
            host_of_page,
            shard_of_host: (0..num_hosts)
                .map(|h| (mix(SHARD_SALT, h as u64) % shards as u64) as u32)
                .collect(),
            num_levels: levels.max(1),
            best: vec![u16::MAX; num_pages],
            done: vec![false; num_pages],
            pending: 0,
            max_pending: 0,
            pushes: 0,
            seq: 0,
            origin: None,
            handoffs: 0,
        }
    }

    /// A frontier over a virtual web space's host table.
    pub fn for_space(ws: &WebSpace, levels: usize, shards: usize) -> Self {
        let host_of_page = ws.page_ids().map(|p| ws.host_id(p)).collect();
        ShardedFrontier::new(host_of_page, ws.num_hosts(), levels, shards)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Host owning a page.
    pub fn host_of(&self, p: PageId) -> u32 {
        self.host_of_page[p as usize]
    }

    /// Shard owning a host.
    pub fn shard_of(&self, host: u32) -> usize {
        self.shard_of_host[host as usize] as usize
    }

    /// Per-shard load counters, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats).collect()
    }

    /// Total accepted pushes that crossed shards so far. The scheduler
    /// reads the delta across one resolution to emit
    /// [`crate::event::CrawlEvent::ShardHandoff`].
    pub fn handoffs(&self) -> u64 {
        self.handoffs
    }

    /// Declare the host whose fetch is currently being resolved:
    /// subsequent accepted pushes landing on another shard count as
    /// handoffs. `None` (the initial state) attributes nothing — seed
    /// pushes are not discovery traffic.
    pub fn set_origin(&mut self, host: Option<u32>) {
        self.origin = host;
    }

    /// `UrlQueue`'s level clamp: priorities at or above the level count
    /// share the last ring.
    fn level(&self, e: &Entry) -> u8 {
        (e.priority as usize).min(self.num_levels - 1) as u8
    }

    /// Store an accepted entry on its host and re-expose the host's
    /// minimum, updating shard stats.
    fn insert(&mut self, e: Entry) {
        let host = self.host_of_page[e.page as usize];
        let level = self.level(&e);
        let seq = self.seq;
        self.seq += 1;
        let si = self.shard_of_host[host as usize] as usize;
        self.shards[si].stats.pushes += 1;
        if let Some(from) = self.origin {
            if self.shard_of_host[from as usize] as usize != si {
                self.shards[si].stats.handoffs_in += 1;
                self.handoffs += 1;
            }
        }
        let slot: Slot = (level, seq, e.page, e.priority, e.distance);
        self.hosts[host as usize].parked.push(Reverse(slot));
        self.refresh(host);
    }

    /// Re-establish the exposure invariant for one host: a `Ready` host
    /// with entries exposes exactly its parked minimum. Pushes a fresh
    /// token when the exposed minimum changed (the previous token, if
    /// any, goes stale and is discarded when it surfaces); no-op for
    /// busy/cooling hosts and when the minimum is already exposed.
    fn refresh(&mut self, host: u32) {
        if self.host_state[host as usize] != HostState::Ready {
            return;
        }
        let hq = &mut self.hosts[host as usize];
        match hq.parked.peek() {
            Some(&Reverse((level, seq, page, priority, distance))) => {
                if hq.exposed != Some((level, seq)) {
                    hq.exposed = Some((level, seq));
                    let si = self.shard_of_host[host as usize] as usize;
                    self.shards[si]
                        .avail
                        .push(Reverse((level, seq, host, page, priority, distance)));
                }
            }
            None => hq.exposed = None,
        }
    }

    /// Settle shard `si`'s avail top to a live token and return its
    /// `(level, seq)`, discarding stale tokens along the way. `None`
    /// when the shard exposes nothing.
    fn clean_top(&mut self, si: usize) -> Option<(u8, u64)> {
        loop {
            let &Reverse((level, seq, host, ..)) = self.shards[si].avail.peek()?;
            if self.hosts[host as usize].exposed == Some((level, seq)) {
                // A live token implies its host is Ready (only
                // `refresh` sets `exposed`, and every transition away
                // from Ready clears it) and that the token mirrors the
                // host's parked minimum.
                return Some((level, seq));
            }
            // Stale token: the host's minimum moved on, or the host
            // left Ready. The entry it carries still lives in the
            // host's parked heap, so the copy is just dropped.
            self.shards[si].avail.pop();
        }
    }

    /// Pop the global minimum over ready hosts. `mark_busy` is the
    /// scheduler path: the popped entry's host transitions to `Busy`
    /// (per-host concurrency 1) instead of re-exposing its next entry.
    fn pop_inner(&mut self, mark_busy: bool) -> Option<Entry> {
        loop {
            // The minimum over shard tops is the global minimum over
            // ready hosts: each ready host exposes exactly its minimum.
            let mut min: Option<(usize, (u8, u64))> = None;
            for si in 0..self.shards.len() {
                if let Some(k) = self.clean_top(si) {
                    if min.is_none_or(|(_, mk)| k < mk) {
                        min = Some((si, k));
                    }
                }
            }
            let (si, _) = min?;
            let Reverse((_, _, host, page, priority, distance)) = self.shards[si].avail.pop()?;
            // The live token is a copy of the host's parked minimum;
            // consume the original too.
            let hq = &mut self.hosts[host as usize];
            hq.exposed = None;
            hq.parked.pop();
            let e = Entry {
                page,
                priority,
                distance,
            };
            let idx = page as usize;
            if self.done[idx] || key(&e) > self.best[idx] {
                // Stale: fetched already, or superseded by a better
                // admission. Discarded destructively at pop time —
                // exactly when the FIFO rings would have skipped it.
                self.refresh(host);
                continue;
            }
            self.done[idx] = true;
            self.pending -= 1;
            self.shards[si].stats.pops += 1;
            if mark_busy {
                self.host_state[host as usize] = HostState::Busy;
            } else {
                self.refresh(host);
            }
            return Some(e);
        }
    }

    /// Scheduler pop: the global minimum over *ready* hosts, marking
    /// the winning host `Busy`. Busy and cooling hosts expose nothing,
    /// so per-host concurrency 1 and politeness gaps hold by
    /// construction. `None` when every waiting entry belongs to a busy
    /// or cooling host (or the frontier is dry).
    pub fn pop_ready(&mut self) -> Option<Entry> {
        self.pop_inner(true)
    }

    /// Finish a fetch on `host`. `ready_at` is the host's next allowed
    /// fetch start (politeness); at or before `now` the host returns to
    /// `Ready` immediately, otherwise it parks in its shard's cool-down
    /// heap. Returns `true` when the host was parked *with work still
    /// queued* — the politeness-wait signal.
    pub fn release(&mut self, host: u32, ready_at: u64, now: u64) -> bool {
        if ready_at > now {
            self.host_state[host as usize] = HostState::Cooling;
            let si = self.shard_of_host[host as usize] as usize;
            self.shards[si].cooling.push(Reverse((ready_at, host)));
            !self.hosts[host as usize].parked.is_empty()
        } else {
            self.host_state[host as usize] = HostState::Ready;
            self.refresh(host);
            false
        }
    }

    /// Wake every host whose cool-down expires at or before `t`.
    pub fn advance_to(&mut self, t: u64) {
        for si in 0..self.shards.len() {
            while let Some(&Reverse((ready_at, host))) = self.shards[si].cooling.peek() {
                if ready_at > t {
                    break;
                }
                self.shards[si].cooling.pop();
                self.host_state[host as usize] = HostState::Ready;
                self.refresh(host);
            }
        }
    }

    /// Earliest tick at which a cooling host wakes, if any — the
    /// scheduler's next candidate time when slots idle.
    pub fn next_cooling(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|s| s.cooling.peek().map(|&Reverse((at, _))| at))
            .min()
    }
}

/// The shared admission key (identical to `UrlQueue`'s).
fn key(e: &Entry) -> u16 {
    ((e.priority as u16) << 8) | e.distance as u16
}

impl Frontier for ShardedFrontier {
    fn push(&mut self, e: Entry) -> bool {
        let idx = e.page as usize;
        if self.done[idx] {
            return false;
        }
        let k = key(&e);
        if k >= self.best[idx] {
            return false; // duplicate or not better
        }
        if self.best[idx] == u16::MAX {
            self.pending += 1;
            self.max_pending = self.max_pending.max(self.pending);
        }
        self.best[idx] = k;
        self.insert(e);
        self.pushes += 1;
        true
    }

    fn pop(&mut self) -> Option<Entry> {
        self.pop_inner(false)
    }

    fn requeue(&mut self, e: Entry) -> bool {
        let idx = e.page as usize;
        if !self.done[idx] {
            return self.push(e);
        }
        self.done[idx] = false;
        self.best[idx] = key(&e);
        self.pending += 1;
        self.max_pending = self.max_pending.max(self.pending);
        self.insert(e);
        self.pushes += 1;
        true
    }

    fn pending(&self) -> usize {
        self.pending
    }

    fn max_pending(&self) -> usize {
        self.max_pending
    }

    fn total_pushes(&self) -> u64 {
        self.pushes
    }

    fn is_done(&self, p: PageId) -> bool {
        self.done[p as usize]
    }

    fn was_admitted(&self, p: PageId) -> bool {
        self.best[p as usize] != u16::MAX
    }
}

/// The plain-`Frontier` face of [`UrlQueue`] and [`ShardedFrontier`]
/// share semantics; re-exported tests pin it, so nothing here.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::UrlQueue;

    fn e(page: PageId, priority: u8, distance: u8) -> Entry {
        Entry {
            page,
            priority,
            distance,
        }
    }

    /// 8 pages spread over 3 hosts (pages 0..3 on host 0, 3..6 on
    /// host 1, 6..8 on host 2).
    fn frontier(shards: usize) -> ShardedFrontier {
        ShardedFrontier::new(vec![0, 0, 0, 1, 1, 1, 2, 2], 3, 4, shards)
    }

    #[test]
    fn global_pop_order_matches_urlqueue_for_any_shard_count() {
        let pushes = [
            e(3, 1, 0),
            e(0, 0, 0),
            e(6, 0, 0),
            e(1, 2, 1),
            e(4, 0, 2),
            e(1, 0, 0), // re-prioritized
            e(7, 3, 0),
        ];
        let mut reference = UrlQueue::new(8, 4);
        for &p in &pushes {
            reference.push(p);
        }
        let want: Vec<Entry> = std::iter::from_fn(|| reference.pop()).collect();
        for shards in [1, 2, 3, 8] {
            let mut f = frontier(shards);
            for &p in &pushes {
                Frontier::push(&mut f, p);
            }
            let got: Vec<Entry> = std::iter::from_fn(|| f.pop()).collect();
            assert_eq!(got, want, "{shards} shards");
        }
    }

    #[test]
    fn busy_host_is_skipped_and_resumes() {
        let mut f = frontier(2);
        f.push(e(0, 0, 0));
        f.push(e(1, 0, 0));
        f.push(e(3, 1, 0));
        // Pop page 0 → host 0 busy; its page 1 is parked, so the next
        // ready entry is host 1's page 3 despite its worse level.
        let first = f.pop_ready().unwrap();
        assert_eq!(first.page, 0);
        assert_eq!(f.pop_ready().unwrap().page, 3);
        assert!(f.pop_ready().is_none(), "both hosts busy");
        // Releasing host 0 with no politeness re-exposes page 1.
        assert!(!f.release(0, 0, 0));
        assert_eq!(f.pop_ready().unwrap().page, 1);
    }

    #[test]
    fn cooling_host_waits_for_advance() {
        let mut f = frontier(1);
        f.push(e(0, 0, 0));
        f.push(e(1, 0, 0));
        assert_eq!(f.pop_ready().unwrap().page, 0);
        // Host 0 owes a gap until tick 5 and still has page 1 queued.
        assert!(f.release(0, 5, 1), "parked with work → politeness wait");
        assert!(f.pop_ready().is_none());
        assert_eq!(f.next_cooling(), Some(5));
        f.advance_to(4);
        assert!(f.pop_ready().is_none(), "gap not yet elapsed");
        f.advance_to(5);
        assert_eq!(f.pop_ready().unwrap().page, 1);
        assert_eq!(f.next_cooling(), None);
    }

    #[test]
    fn handoffs_attribute_cross_shard_pushes() {
        // The shard hash is opaque: find a shard count under which two
        // fixture hosts land on different shards, and a page on each.
        let (shards, home, away) = (2..=16usize)
            .find_map(|n| {
                let probe = frontier(n);
                (0..3u32)
                    .flat_map(|a| (0..3u32).map(move |b| (a, b)))
                    .find(|&(a, b)| probe.shard_of(a) != probe.shard_of(b))
                    .map(|(a, b)| (n, a, b))
            })
            .expect("some shard count must separate the fixture hosts");
        let page_on = |h: u32| [0u32, 3, 6][h as usize];
        let mut f = frontier(shards);
        f.set_origin(Some(home));
        f.push(e(page_on(away), 0, 0)); // crosses shards
        f.push(e(page_on(home), 1, 0)); // stays home
        assert_eq!(f.handoffs(), 1);
        let stats = f.shard_stats();
        assert_eq!(stats.iter().map(|s| s.handoffs_in).sum::<u64>(), 1);
        assert_eq!(stats.iter().map(|s| s.pushes).sum::<u64>(), 2);
        f.set_origin(None);
        f.push(e(7, 0, 0)); // no origin: seeds never count
        assert_eq!(f.handoffs(), 1);
    }

    #[test]
    fn requeue_matches_urlqueue_semantics() {
        let mut f = frontier(2);
        f.push(e(2, 0, 0));
        f.pop().unwrap();
        assert!(!f.push(e(2, 0, 0)), "push refuses done pages");
        assert!(f.requeue(e(2, 1, 0)));
        assert!(!f.is_done(2));
        assert_eq!(f.pending(), 1);
        let again = f.pop().unwrap();
        assert_eq!((again.page, again.priority), (2, 1));
        assert!(f.pop().is_none());
    }

    #[test]
    fn accounting_matches_urlqueue_semantics() {
        let mut f = frontier(3);
        for p in 0..5 {
            f.push(e(p, 0, 0));
        }
        assert_eq!(f.pending(), 5);
        assert_eq!(f.max_pending(), 5);
        f.pop();
        f.pop();
        assert_eq!(f.pending(), 3);
        assert_eq!(f.max_pending(), 5);
        assert_eq!(f.total_pushes(), 5);
        let stats = f.shard_stats();
        assert_eq!(stats.iter().map(|s| s.pushes).sum::<u64>(), 5);
        assert_eq!(stats.iter().map(|s| s.pops).sum::<u64>(), 2);
    }

    #[test]
    fn reprioritization_supersedes_the_representative() {
        let mut f = frontier(1);
        assert!(f.push(e(1, 2, 0)));
        assert!(f.push(e(0, 3, 0)));
        // Page 1 re-discovered at a better priority: the old exposure
        // token goes stale and the better entry is exposed instead.
        assert!(f.push(e(1, 0, 0)));
        assert_eq!(f.pending(), 2);
        assert_eq!(f.pop().unwrap(), e(1, 0, 0));
        assert_eq!(f.pop().unwrap(), e(0, 3, 0));
        assert!(f.pop().is_none(), "stale duplicate skipped");
    }
}
