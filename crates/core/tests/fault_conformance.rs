//! Zero-fault conformance: `FaultConfig::default()` must leave the
//! engine's observable behavior bit-identical to the pre-fault-model
//! engine.
//!
//! The golden hashes below were captured from the engine *before* the
//! fault/retry subsystem existed (PR 3), on the same pinned space the
//! `engine_parity` suite uses. Unlike `engine_parity` — which re-runs a
//! preserved copy of the old loop — these constants pin the behavior
//! across time: any change to the default (zero-fault) crawl path, no
//! matter how plausible, shows up as a hash mismatch here.
//!
//! The hash folds every pre-existing `CrawlReport` field (strategy and
//! classifier names, the full sample series, all counters, and the
//! recorded visit order). Fields added *by* the fault subsystem
//! (attempt/retry counters) are deliberately excluded: at zero faults
//! they must be derivable (`attempts == crawled`, `retries == 0`), which
//! is asserted separately.

use langcrawl_core::classifier::{MetaClassifier, OracleClassifier};
use langcrawl_core::metrics::CrawlReport;
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::{BreadthFirst, LimitedDistanceStrategy, SimpleStrategy};
use langcrawl_webgraph::GeneratorConfig;

/// FNV-1a over the pre-fault-model report fields.
fn report_hash(r: &CrawlReport) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold_bytes = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    fold_bytes(r.strategy.as_bytes());
    fold_bytes(r.classifier.as_bytes());
    let mut fold = |x: u64| {
        for b in x.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    fold(r.samples.len() as u64);
    for s in &r.samples {
        fold(s.crawled);
        fold(s.relevant);
        fold(s.queue_size as u64);
    }
    fold(r.crawled);
    fold(r.relevant_crawled);
    fold(r.total_relevant);
    fold(r.max_queue as u64);
    fold(r.total_pushes);
    fold(r.visited.len() as u64);
    for &v in &r.visited {
        fold(v as u64);
    }
    h
}

/// The pinned space: same preset/scale/seed as `engine_parity`.
fn space() -> langcrawl_webgraph::WebSpace {
    GeneratorConfig::thai_like().scaled(12_000).build(41)
}

/// (name, golden hash, runner) for each pinned run. Visits are recorded
/// so the hash pins the exact fetch order, not just the totals.
fn runs() -> Vec<(&'static str, u64, CrawlReport)> {
    let ws = space();
    let config = SimConfig::default().with_visit_recording();
    let mut sim = Simulator::new(&ws, config);
    vec![
        (
            "breadth_first/oracle",
            GOLDEN_BF,
            sim.run(
                &mut BreadthFirst::new(),
                &OracleClassifier::target(ws.target_language()),
            ),
        ),
        (
            "soft_focused/meta",
            GOLDEN_SOFT,
            sim.run(
                &mut SimpleStrategy::soft(),
                &MetaClassifier::target(ws.target_language()),
            ),
        ),
        (
            "limited_distance_3/oracle",
            GOLDEN_LIMITED,
            sim.run(
                &mut LimitedDistanceStrategy::prioritized(3),
                &OracleClassifier::target(ws.target_language()),
            ),
        ),
    ]
}

// Golden hashes captured from the pre-fault-model engine (see module
// docs). Regenerate only for a deliberate, documented behavior change:
// `cargo test -p langcrawl-core --test fault_conformance -- --nocapture`
// prints the observed values on mismatch.
const GOLDEN_BF: u64 = 0x5af6_b0d1_35f4_3b35;
const GOLDEN_SOFT: u64 = 0x8cbf_d1f5_bf63_739f;
const GOLDEN_LIMITED: u64 = 0x6080_ba7a_e671_6b67;

#[test]
fn zero_fault_reports_match_pre_change_golden_hashes() {
    let mut bad = Vec::new();
    for (name, golden, report) in runs() {
        let got = report_hash(&report);
        if got != golden {
            bad.push(format!(
                "{name}: report hash {got:#018x} != golden {golden:#018x}"
            ));
        }
    }
    assert!(bad.is_empty(), "{}", bad.join("\n"));
}

/// The counters the fault subsystem *added* must be trivial at zero
/// faults: one attempt per crawled page, nothing retried or abandoned.
#[test]
fn zero_fault_counters_are_trivial() {
    for (name, _, report) in runs() {
        assert_eq!(report.attempts, report.crawled, "{name}");
        assert_eq!(report.retries, 0, "{name}");
        assert_eq!(report.gave_up, 0, "{name}");
        assert!(
            (report.harvest_net() - report.final_harvest()).abs() < 1e-15,
            "{name}: net harvest must equal harvest without faults"
        );
    }
}
