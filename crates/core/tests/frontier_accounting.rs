//! Frontier accounting under retry exhaustion.
//!
//! The engine's retry path (`Frontier::requeue`) re-opens a page's
//! pending slot; when the page later exhausts its attempt budget
//! (`gave_up`) it resolves like any other fetch and the slot closes
//! again. This suite pins the accounting across all three frontier
//! implementations on a heavily faulted run: `pending()` must return to
//! exactly zero once the crawl finishes, and — because under a
//! breadth-first strategy all admission keys are equal and every
//! discipline degrades to the same FIFO — the crawl itself, its
//! `max_pending` high-water mark, and its push totals must be
//! *identical* across `UrlQueue`, `BestFirstFrontier`, and
//! `ShardedFrontier`.

use langcrawl_core::classifier::OracleClassifier;
use langcrawl_core::engine::{CrawlEngine, EngineConfig};
use langcrawl_core::event::{interest, CrawlEvent, EventSink};
use langcrawl_core::frontier::BestFirstFrontier;
use langcrawl_core::queue::UrlQueue;
use langcrawl_core::shard::ShardedFrontier;
use langcrawl_core::strategy::BreadthFirst;
use langcrawl_webgraph::{FaultConfig, GeneratorConfig, WebSpace};

/// Captures the frontier counters the engine reports at `Finished`.
#[derive(Debug, Default)]
struct FinishedCapture {
    pending: Option<usize>,
    max_pending: usize,
    total_pushes: u64,
}

impl EventSink for FinishedCapture {
    fn on_event(&mut self, event: &CrawlEvent) {
        if let CrawlEvent::Finished {
            pending,
            max_pending,
            total_pushes,
            ..
        } = *event
        {
            self.pending = Some(pending);
            self.max_pending = max_pending;
            self.total_pushes = total_pushes;
        }
    }
    fn interests(&self) -> u16 {
        interest::FINISHED
    }
}

fn space() -> WebSpace {
    GeneratorConfig::thai_like().scaled(6_000).build(17)
}

/// One faulted run per frontier implementation; returns the outcome and
/// the `Finished` snapshot.
fn faulted_runs() -> Vec<(
    &'static str,
    langcrawl_core::engine::EngineOutcome,
    FinishedCapture,
)> {
    let ws = space();
    // A high transient rate plus dead hosts guarantees retry traffic
    // AND exhausted budgets (`gave_up`) — the accounting paths under
    // audit.
    let engine = CrawlEngine::new(
        &ws,
        EngineConfig {
            fault: FaultConfig::with_rate(0.3),
            ..EngineConfig::default()
        },
    );
    let classifier = OracleClassifier::target(ws.target_language());
    let mut out = Vec::new();
    for name in ["url_queue", "best_first", "sharded"] {
        let mut capture = FinishedCapture::default();
        let outcome = match name {
            "url_queue" => engine.run(
                UrlQueue::new(ws.num_pages(), 1),
                &mut BreadthFirst::new(),
                &classifier,
                &mut [&mut capture],
            ),
            "best_first" => engine.run(
                BestFirstFrontier::new(ws.num_pages()),
                &mut BreadthFirst::new(),
                &classifier,
                &mut [&mut capture],
            ),
            _ => engine.run(
                ShardedFrontier::for_space(&ws, 1, 4),
                &mut BreadthFirst::new(),
                &classifier,
                &mut [&mut capture],
            ),
        };
        out.push((name, outcome, capture));
    }
    out
}

#[test]
fn pending_returns_to_zero_when_retries_exhaust() {
    for (name, outcome, capture) in faulted_runs() {
        assert!(
            outcome.gave_up > 0,
            "{name}: the fixture must exhaust some retry budgets"
        );
        assert!(outcome.retries > 0, "{name}: the fixture must retry");
        assert_eq!(
            capture.pending,
            Some(0),
            "{name}: frontier must drain to zero pending"
        );
    }
}

#[test]
fn accounting_is_identical_across_frontier_implementations() {
    let runs = faulted_runs();
    let (_, first, cap0) = &runs[0];
    for (name, outcome, capture) in &runs[1..] {
        assert_eq!(
            outcome, first,
            "{name}: outcome diverged from url_queue under uniform keys"
        );
        assert_eq!(capture.max_pending, cap0.max_pending, "{name}");
        assert_eq!(capture.total_pushes, cap0.total_pushes, "{name}");
    }
    // And the sink's view agrees with the outcome's.
    for (name, outcome, capture) in &runs {
        assert_eq!(outcome.max_pending, capture.max_pending, "{name}");
        assert_eq!(outcome.total_pushes, capture.total_pushes, "{name}");
    }
}
