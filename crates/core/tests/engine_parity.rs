//! Engine parity: the layered engine behind [`Simulator::run`] must be
//! **bit-identical** to the monolithic crawl loop it replaced.
//!
//! `reference_run` below is a line-for-line copy of the pre-refactor
//! `Simulator::run` body (the single loop that owned queueing, sampling
//! and visit recording before the Frontier/EventSink decomposition).
//! Every strategy family runs both loops over the same space and the
//! whole [`CrawlReport`]s — samples, counters, queue high-water marks,
//! visit sequences — are compared with `assert_eq!`.

use langcrawl_core::classifier::{Classifier, MetaClassifier, OracleClassifier};
use langcrawl_core::metrics::{CrawlReport, Sample};
use langcrawl_core::queue::{Entry, UrlQueue};
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::{
    BacklinkCount, BreadthFirst, CombinedStrategy, ContextGraphStrategy, HitsStrategy,
    LimitedDistanceStrategy, OnlinePageRank, PageView, SimpleStrategy, Strategy,
};
use langcrawl_webgraph::{GeneratorConfig, WebSpace};

/// The pre-refactor monolithic crawl loop, preserved verbatim as the
/// behavioral reference.
fn reference_run(
    ws: &WebSpace,
    config: &SimConfig,
    strategy: &mut dyn Strategy,
    classifier: &dyn Classifier,
) -> CrawlReport {
    let n = ws.num_pages();
    let sample_interval = config
        .sample_interval
        .unwrap_or_else(|| (n as u64 / 512).max(1));
    let budget = config.max_pages.unwrap_or(u64::MAX);

    let mut queue = UrlQueue::new(n, strategy.levels());
    for &s in ws.seeds() {
        queue.push(Entry {
            page: s,
            priority: 0,
            distance: 0,
        });
    }

    let mut crawled: u64 = 0;
    let mut relevant_crawled: u64 = 0;
    let mut samples: Vec<Sample> = Vec::with_capacity(600);
    let mut admissions: Vec<Entry> = Vec::with_capacity(64);
    let mut visited: Vec<langcrawl_webgraph::PageId> = Vec::new();

    while let Some(entry) = queue.pop() {
        let p = entry.page;
        crawled += 1;
        if config.record_visits {
            visited.push(p);
        }

        let meta = ws.meta(p);
        let relevance = if meta.is_ok_html() {
            classifier.relevance(ws, p)
        } else {
            0.0
        };
        if ws.is_relevant(p) {
            relevant_crawled += 1;
        }

        let consec = if relevance > 0.5 {
            0
        } else {
            entry.distance.saturating_add(1)
        };

        let outlinks = if meta.is_ok_html() {
            ws.outlinks(p)
        } else {
            &[]
        };
        let view = PageView {
            page: p,
            relevance,
            consec_irrelevant: consec,
            outlinks,
            crawled,
        };
        admissions.clear();
        strategy.admit(&view, &mut admissions);
        for &a in &admissions {
            if config.url_filter && ws.meta(a.page).kind == langcrawl_webgraph::PageKind::Other {
                continue;
            }
            queue.push(a);
        }

        if crawled.is_multiple_of(sample_interval) {
            samples.push(Sample {
                crawled,
                relevant: relevant_crawled,
                queue_size: queue.pending(),
            });
        }
        if crawled >= budget {
            break;
        }
    }

    if samples.last().map(|s| s.crawled) != Some(crawled) {
        samples.push(Sample {
            crawled,
            relevant: relevant_crawled,
            queue_size: queue.pending(),
        });
    }

    CrawlReport {
        strategy: strategy.name(),
        classifier: classifier.name().to_string(),
        samples,
        crawled,
        relevant_crawled,
        total_relevant: ws.total_relevant() as u64,
        max_queue: queue.max_pending(),
        total_pushes: queue.total_pushes(),
        visited,
        // The reference loop predates the fault layer: one attempt per
        // page — exactly what a zero-fault layered run must report.
        attempts: crawled,
        retries: 0,
        gave_up: 0,
        // Zero-fault legacy loop: the clock advances once per attempt.
        ticks: crawled,
    }
}

fn space() -> WebSpace {
    GeneratorConfig::thai_like().scaled(12_000).build(41)
}

/// Run a fresh instance of strategy `code` through both loops under
/// `config` and demand identical reports.
fn assert_parity(ws: &WebSpace, config: &SimConfig, code: u8) {
    let build = |ws: &WebSpace| -> Box<dyn Strategy> {
        match code {
            0 => Box::new(BreadthFirst::new()),
            1 => Box::new(SimpleStrategy::hard()),
            2 => Box::new(SimpleStrategy::soft()),
            3 => Box::new(LimitedDistanceStrategy::non_prioritized(3)),
            4 => Box::new(LimitedDistanceStrategy::prioritized(3)),
            5 => Box::new(CombinedStrategy::soft_limited(2)),
            6 => Box::new(HitsStrategy::new()),
            7 => Box::new(ContextGraphStrategy::new(ws, 2)),
            8 => Box::new(BacklinkCount::new()),
            _ => Box::new(OnlinePageRank::new()),
        }
    };
    let oracle = OracleClassifier::target(ws.target_language());
    let expected = reference_run(ws, config, build(ws).as_mut(), &oracle);
    let actual = Simulator::new(ws, config.clone()).run(build(ws).as_mut(), &oracle);
    assert_eq!(
        expected, actual,
        "strategy {} diverged from the reference loop",
        expected.strategy
    );
}

#[test]
fn all_strategies_match_reference_loop() {
    let ws = space();
    let config = SimConfig::default();
    for code in 0..10 {
        assert_parity(&ws, &config, code);
    }
}

#[test]
fn parity_holds_with_budget_filter_and_visits() {
    let ws = space();
    let config = SimConfig::default()
        .with_max_pages(3_000)
        .with_url_filter()
        .with_visit_recording();
    for code in 0..10 {
        assert_parity(&ws, &config, code);
    }
}

#[test]
fn parity_holds_with_meta_classifier_and_custom_interval() {
    let ws = space();
    let config = SimConfig {
        sample_interval: Some(97), // deliberately not dividing anything evenly
        ..SimConfig::default()
    };
    let meta = MetaClassifier::target(ws.target_language());
    for code in [1u8, 2, 4, 5] {
        let build = |_: &WebSpace| -> Box<dyn Strategy> {
            match code {
                1 => Box::new(SimpleStrategy::hard()),
                2 => Box::new(SimpleStrategy::soft()),
                4 => Box::new(LimitedDistanceStrategy::prioritized(3)),
                _ => Box::new(CombinedStrategy::soft_limited(2)),
            }
        };
        let expected = reference_run(&ws, &config, build(&ws).as_mut(), &meta);
        let actual = Simulator::new(&ws, config.clone()).run(build(&ws).as_mut(), &meta);
        assert_eq!(
            expected, actual,
            "strategy code {code} with META classifier"
        );
    }
}
