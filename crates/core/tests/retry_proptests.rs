//! Property tests for the retry/backoff policy and the engine's fault
//! path, over random fault configs, retry policies and seeds.

use langcrawl_core::classifier::OracleClassifier;
use langcrawl_core::engine::{CrawlEngine, EngineConfig};
use langcrawl_core::event::{interest, CrawlEvent, EventSink};
use langcrawl_core::queue::UrlQueue;
use langcrawl_core::retry::RetryPolicy;
use langcrawl_core::strategy::{BreadthFirst, SimpleStrategy, Strategy};
use langcrawl_minicheck::{check, Gen};
use langcrawl_webgraph::generate::generate_with_threads;
use langcrawl_webgraph::{FaultConfig, GeneratorConfig, WebSpace};

/// Records the full per-attempt schedule: per-page attempt highs plus an
/// FNV-1a digest of every `FetchAttempt` field in emission order.
#[derive(Default)]
struct ScheduleRecorder {
    max_attempt_seen: u32,
    per_page_attempts: std::collections::HashMap<u32, u32>,
    hash: u64,
}

impl ScheduleRecorder {
    fn new() -> Self {
        ScheduleRecorder {
            hash: 0xcbf2_9ce4_8422_2325,
            ..Default::default()
        }
    }

    fn fold(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.hash = (self.hash ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

impl EventSink for ScheduleRecorder {
    fn on_event(&mut self, event: &CrawlEvent) {
        if let CrawlEvent::FetchAttempt {
            page,
            attempt,
            status,
            transient,
            retry,
            tick,
        } = *event
        {
            self.max_attempt_seen = self.max_attempt_seen.max(attempt);
            let seen = self.per_page_attempts.entry(page).or_insert(0);
            assert_eq!(
                attempt,
                *seen + 1,
                "page {page}: attempts must arrive in order without gaps"
            );
            *seen = attempt;
            self.fold(page as u64);
            self.fold(attempt as u64);
            self.fold(status.code() as u64);
            self.fold(transient as u64);
            self.fold(retry as u64);
            self.fold(tick);
        }
    }

    fn interests(&self) -> u16 {
        interest::ATTEMPT
    }
}

fn arb_fault(g: &mut Gen) -> FaultConfig {
    FaultConfig {
        transient_rate: g.f64(0.0..0.5),
        flaky_host_rate: g.f64(0.0..0.2),
        flaky_transient_rate: g.f64(0.0..0.9),
        slow_host_rate: g.f64(0.0..0.2),
        slow_timeout_rate: g.f64(0.0..0.9),
        dead_host_rate: g.f64(0.0..0.05),
    }
}

fn arb_retry(g: &mut Gen) -> RetryPolicy {
    RetryPolicy {
        max_attempts: g.u32(1..7),
        backoff_base: g.u64(0..10),
        backoff_cap: g.u64(1..100),
    }
}

fn run_recorded(
    ws: &WebSpace,
    fault: FaultConfig,
    retry: RetryPolicy,
    strategy: &mut dyn Strategy,
) -> ScheduleRecorder {
    let engine = CrawlEngine::new(
        ws,
        EngineConfig {
            fault,
            retry,
            ..EngineConfig::default()
        },
    );
    let mut rec = ScheduleRecorder::new();
    engine.run(
        UrlQueue::new(ws.num_pages(), strategy.levels()),
        strategy,
        &OracleClassifier::target(ws.target_language()),
        &mut [&mut rec],
    );
    rec
}

/// No page is ever attempted more than `max_attempts` times, for any
/// fault config and retry policy.
#[test]
fn attempts_never_exceed_the_cap() {
    check(10, |g| {
        let mut c = GeneratorConfig::thai_like();
        c.total_urls = g.u32(2_000..5_000);
        let ws = c.build(g.u64(0..1_000));
        let retry = arb_retry(g);
        let cap = retry.effective_max_attempts();
        let rec = run_recorded(&ws, arb_fault(g), retry, &mut BreadthFirst::new());
        assert!(
            rec.max_attempt_seen <= cap,
            "saw attempt {} with cap {cap}",
            rec.max_attempt_seen
        );
    });
}

/// Backoff delays are monotonically non-decreasing in the attempt
/// number, for any policy — including degenerate bases and caps.
#[test]
fn backoff_is_monotone_for_any_policy() {
    check(200, |g| {
        let p = RetryPolicy {
            max_attempts: g.u32(1..100),
            backoff_base: g.u64(0..u64::MAX / 2),
            backoff_cap: g.u64(0..u64::MAX / 2),
        };
        let mut prev = 0u64;
        for attempt in 1..=100 {
            let d = p.delay(attempt);
            assert!(
                d >= prev,
                "{p:?}: delay({attempt}) = {d} < delay({}) = {prev}",
                attempt - 1
            );
            assert!(d <= p.backoff_cap, "{p:?}: delay({attempt}) over cap");
            prev = d;
        }
    });
}

/// A page whose every fetch fails transiently is attempted exactly
/// `max_attempts` times, then abandoned — never fetched again.
#[test]
fn always_failing_pages_burn_exactly_the_budget() {
    check(10, |g| {
        let mut c = GeneratorConfig::thai_like();
        c.total_urls = g.u32(2_000..4_000);
        let ws = c.build(g.u64(0..1_000));
        let retry = RetryPolicy {
            max_attempts: g.u32(1..6),
            backoff_base: g.u64(0..5),
            backoff_cap: 16,
        };
        // Every attempt everywhere fails transiently: only the seeds are
        // ever discovered, and each burns its full budget.
        let fault = FaultConfig {
            transient_rate: 1.0,
            ..FaultConfig::default()
        };
        let rec = run_recorded(&ws, fault, retry, &mut BreadthFirst::new());
        assert_eq!(rec.per_page_attempts.len(), ws.seeds().len());
        for (&page, &attempts) in &rec.per_page_attempts {
            assert_eq!(
                attempts,
                retry.effective_max_attempts(),
                "page {page} must exhaust its budget exactly"
            );
        }
    });
}

/// The complete retry schedule — every `(page, attempt, status,
/// transient, retry, tick)` tuple in emission order — is identical for
/// spaces generated at 1, 2 and 8 threads: fault draws depend only on
/// `(seed, page, attempt)`, never on generation chunking.
#[test]
fn retry_schedule_identical_across_generation_thread_counts() {
    check(6, |g| {
        let mut c = GeneratorConfig::thai_like();
        c.total_urls = g.u32(2_000..5_000);
        let seed = g.u64(0..1_000);
        let fault = FaultConfig::with_rate(g.f64(0.05..0.4));
        let retry = arb_retry(g);
        let soft = g.bool(0.5);
        let schedule = |threads: usize| {
            let ws = generate_with_threads(&c, seed, threads);
            let mut strategy: Box<dyn Strategy> = if soft {
                Box::new(SimpleStrategy::soft())
            } else {
                Box::new(BreadthFirst::new())
            };
            run_recorded(&ws, fault.clone(), retry, strategy.as_mut()).hash
        };
        let h1 = schedule(1);
        let h2 = schedule(2);
        let h8 = schedule(8);
        assert_eq!(h1, h2, "schedule diverged between 1 and 2 threads");
        assert_eq!(h1, h8, "schedule diverged between 1 and 8 threads");
    });
}
