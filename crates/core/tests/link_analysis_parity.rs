//! Link-analysis parity: the incremental engines behind the three
//! link-based strategies must agree with their full-recompute
//! references on whole pinned crawls, not just on unit-sized graphs.
//!
//! * PageRank: the delta-propagating solver and the full-reseed
//!   reference produce **identical `CrawlReport`s** (same fetch order,
//!   same bucket assignments) on the pinned experiment cell, and raw
//!   ranks agree within a pinned L∞ bound.
//! * HITS: incremental distillation is *bitwise* identical to the full
//!   recompute (see `linkgraph::hits` for why), so reports must match
//!   exactly too.
//! * Everything is swept across `LANGCRAWL_THREADS` ∈ {1, 4}: link
//!   analysis runs on the single-threaded resolve path and must not
//!   observe thread count.

use langcrawl_core::classifier::OracleClassifier;
use langcrawl_core::metrics::CrawlReport;
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::{
    HitsStrategy, OnlineContextGraphStrategy, OnlinePageRank, PageView, Strategy,
};
use langcrawl_webgraph::{GeneratorConfig, WebSpace};

/// The pinned cell: same preset/scale/seed family as `engine_parity`.
fn space() -> WebSpace {
    GeneratorConfig::thai_like().scaled(12_000).build(41)
}

/// One full pinned crawl with visit recording (so a report mismatch
/// pins the exact fetch order, not just the totals).
fn run(ws: &WebSpace, strategy: &mut dyn Strategy) -> CrawlReport {
    let config = SimConfig::default().with_visit_recording();
    Simulator::new(ws, config).run(strategy, &OracleClassifier::target(ws.target_language()))
}

#[test]
fn pagerank_incremental_report_matches_full_reference() {
    let ws = space();
    let inc = run(&ws, &mut OnlinePageRank::new());
    let full = run(&ws, &mut OnlinePageRank::full_reference(2_000, 10, 0.85));
    assert_eq!(inc, full, "pagerank-ordered crawl diverged from reference");
}

#[test]
fn hits_incremental_report_matches_full_reference() {
    let ws = space();
    let inc = run(&ws, &mut HitsStrategy::new());
    let full = run(&ws, &mut HitsStrategy::full_reference(2_000, 20, 5));
    assert_eq!(inc, full, "soft+hits crawl diverged from reference");
}

/// Feed the pinned space's pages directly through both solvers (tight
/// interval so refreshes happen often) and bound the raw rank gap.
#[test]
fn pagerank_ranks_within_pinned_linf_bound() {
    let ws = space();
    let mut inc = OnlinePageRank::with_params(97, 64, 0.85);
    let mut full = OnlinePageRank::full_reference(97, 64, 0.85);
    let mut out = Vec::new();
    for (i, p) in ws.page_ids().take(4_000).enumerate() {
        let view = PageView {
            page: p,
            relevance: 0.0,
            consec_irrelevant: 1,
            outlinks: ws.outlinks(p),
            crawled: i as u64 + 1,
        };
        inc.admit(&view, &mut out);
        full.admit(&view, &mut out);
        out.clear();
    }
    let mut linf = 0.0f64;
    for p in ws.page_ids().take(4_000) {
        linf = linf.max((inc.rank(p) - full.rank(p)).abs());
    }
    // The pinned bound: both modes stop once residuals drop below the
    // strategy threshold θ = 1e-2/N = 2.5e-6 here, so their gap is a
    // small multiple of θ — pinned at 4θ, still ~25× below the uniform
    // rank 1/4000 = 2.5e-4 and far inside one log₂ priority bucket.
    assert!(linf < 1e-5, "L∞ rank gap {linf}");
    assert!((inc.rank_sum() - 1.0).abs() < 1e-10, "{}", inc.rank_sum());
    assert!((full.rank_sum() - 1.0).abs() < 1e-10, "{}", full.rank_sum());
}

/// The report hashes of every link strategy must be invariant under
/// `LANGCRAWL_THREADS` — the strategies run on the single-threaded
/// resolve path, and the store/solvers never observe thread count.
#[test]
fn link_strategy_reports_invariant_under_thread_sweep() {
    let mut baseline: Option<Vec<CrawlReport>> = None;
    for threads in ["1", "4"] {
        std::env::set_var("LANGCRAWL_THREADS", threads);
        let ws = space();
        let reports = vec![
            run(&ws, &mut OnlinePageRank::new()),
            run(&ws, &mut HitsStrategy::new()),
            run(&ws, &mut OnlineContextGraphStrategy::new(2)),
        ];
        match &baseline {
            None => baseline = Some(reports),
            Some(b) => assert_eq!(
                b, &reports,
                "link-strategy reports changed under LANGCRAWL_THREADS={threads}"
            ),
        }
    }
    std::env::remove_var("LANGCRAWL_THREADS");
}
