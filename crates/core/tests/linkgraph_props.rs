//! Property tests for the shared crawl-graph store
//! ([`langcrawl_core::linkgraph`]): the chunked-CSR arena against a
//! naive `Vec<Vec<_>>` model under random interleaved inserts.
//!
//! Checked invariants (the ISSUE-10 satellite list):
//! * interning is a bijection between distinct page ids and dense slots;
//! * forward and reverse adjacency stay exact mirror images (same edge
//!   multiset; forward in chronological order, reverse sorted by source
//!   page id);
//! * chunked-CSR reverse iteration matches the naive model element for
//!   element;
//! * epoch deltas partition the edge set: per-epoch edge counts sum to
//!   the arena total, and every touched slot appears in exactly the
//!   epoch that touched it.

use langcrawl_core::linkgraph::LinkGraph;
use langcrawl_minicheck::{check, Gen};

/// Naive mirror of the store: slot-indexed `Vec`s, no chunking, no
/// interning tricks.
#[derive(Default)]
struct Model {
    /// slot → page id, in first-seen order.
    pages: Vec<u32>,
    /// slot → outlink target slots, in record order.
    fwd: Vec<Vec<u32>>,
    /// slot → source slots, sorted by source page id (insertion order
    /// among equal sources — duplicate edges from one page — is
    /// immaterial because equal keys mean equal slots).
    rev: Vec<Vec<u32>>,
    crawled: Vec<bool>,
}

impl Model {
    fn intern(&mut self, page: u32) -> u32 {
        if let Some(s) = self.pages.iter().position(|&p| p == page) {
            return s as u32;
        }
        self.pages.push(page);
        self.fwd.push(Vec::new());
        self.rev.push(Vec::new());
        self.crawled.push(false);
        self.pages.len() as u32 - 1
    }

    fn record_page(&mut self, page: u32, outlinks: &[u32]) {
        let s = self.intern(page);
        if self.crawled[s as usize] {
            return;
        }
        self.crawled[s as usize] = true;
        for &t in outlinks {
            let ts = self.intern(t);
            self.fwd[s as usize].push(ts);
            let key = self.pages[s as usize];
            let pos = {
                let pages = &self.pages;
                self.rev[ts as usize].partition_point(|&x| pages[x as usize] <= key)
            };
            self.rev[ts as usize].insert(pos, s);
        }
    }

    fn lost_out(&self, s: u32) -> u32 {
        self.fwd[s as usize]
            .iter()
            .filter(|&&t| !self.crawled[t as usize])
            .count() as u32
    }
}

/// Drive `steps` random `record_page` calls (small page universe so
/// duplicates, self-loops and re-records all occur) against both the
/// store and the model, checking full equivalence at the end.
fn grow_and_compare(g: &mut Gen, steps: usize, universe: u32) -> (LinkGraph, Model) {
    let mut store = LinkGraph::new();
    let mut model = Model::default();
    let mut outs = Vec::new();
    for _ in 0..steps {
        let page = g.u32(0..universe);
        outs.clear();
        for _ in 0..g.usize(0..12) {
            outs.push(g.u32(0..universe));
        }
        store.record_page(page, &outs);
        model.record_page(page, &outs);
    }
    (store, model)
}

fn assert_equiv(store: &LinkGraph, model: &Model) {
    assert_eq!(store.num_slots(), model.pages.len(), "slot count");
    assert_eq!(
        store.num_crawled(),
        model.crawled.iter().filter(|&&c| c).count(),
        "crawled count"
    );
    let total: usize = model.fwd.iter().map(Vec::len).sum();
    assert_eq!(store.num_edges(), total, "edge count");
    for s in 0..model.pages.len() as u32 {
        // Interning bijection: page_at ∘ slot_of = id, slots dense.
        let page = model.pages[s as usize];
        assert_eq!(store.page_at(s), page, "page_at({s})");
        assert_eq!(store.slot_of(page), Some(s), "slot_of({page})");
        assert_eq!(store.is_crawled(s), model.crawled[s as usize]);
        // Forward adjacency: exact order and multiplicity.
        assert_eq!(store.out_slots(s), &model.fwd[s as usize][..], "fwd({s})");
        assert_eq!(store.out_degree(s) as usize, model.fwd[s as usize].len());
        // Reverse adjacency through the chunk chain: exact page-sorted
        // order and multiplicity — the mirror-image and CSR-vs-model
        // properties at once.
        let rev: Vec<u32> = store.in_slots(s).collect();
        assert_eq!(rev, model.rev[s as usize], "rev({s})");
        assert_eq!(store.in_degree(s) as usize, model.rev[s as usize].len());
        assert_eq!(store.lost_out(s), model.lost_out(s), "lost_out({s})");
    }
    let max_in = model.rev.iter().map(Vec::len).max().unwrap_or(0);
    assert_eq!(store.max_in_degree() as usize, max_in, "max_in_degree");
    // Unknown pages resolve to nothing.
    assert_eq!(store.slot_of(u32::MAX), None);
}

#[test]
fn store_matches_naive_model_under_random_growth() {
    check(64, |g| {
        let steps = g.usize(1..120);
        let universe = g.u32(1..80) + 1;
        let (store, model) = grow_and_compare(g, steps, universe);
        assert_equiv(&store, &model);
    });
}

#[test]
fn epoch_deltas_partition_the_edge_set() {
    check(64, |g| {
        let mut store = LinkGraph::new();
        let universe = g.u32(2..60) + 1;
        let mut outs = Vec::new();
        let mut per_epoch_edges = Vec::new();
        let mut seen_in_delta = vec![0u32; universe as usize + 1];
        let mut epoch_no = 0u32;
        for _ in 0..g.usize(1..100) {
            if g.bool(0.2) {
                // Close the epoch: record its edge count and check the
                // delta holds each touched slot exactly once.
                per_epoch_edges.push(store.edges_in_epoch());
                epoch_no += 1;
                for &s in store.delta() {
                    let page = store.page_at(s) as usize;
                    assert_ne!(
                        seen_in_delta[page], epoch_no,
                        "slot {s} listed twice in one delta"
                    );
                    seen_in_delta[page] = epoch_no;
                }
                store.advance_epoch();
                assert!(store.delta().is_empty(), "delta survives the epoch");
                assert_eq!(store.edges_in_epoch(), 0);
            }
            let page = g.u32(0..universe);
            outs.clear();
            for _ in 0..g.usize(0..8) {
                outs.push(g.u32(0..universe));
            }
            store.record_page(page, &outs);
        }
        per_epoch_edges.push(store.edges_in_epoch());
        let partitioned: u64 = per_epoch_edges.iter().sum();
        assert_eq!(
            partitioned,
            store.num_edges() as u64,
            "per-epoch edge counts must sum to the arena total"
        );
    });
}
