//! Property tests for the simulator core: the URL queue against a
//! reference model, and crawl-level invariants over random spaces,
//! strategies and budgets.

use langcrawl_core::classifier::{MetaClassifier, OracleClassifier};
use langcrawl_core::queue::{Entry, UrlQueue};
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::{
    BreadthFirst, CombinedStrategy, LimitedDistanceStrategy, SimpleStrategy,
};
use langcrawl_webgraph::GeneratorConfig;
use proptest::prelude::*;

// ---------------------------------------------------------------- queue

/// Reference model of the queue: a sorted scan over explicit state.
#[derive(Default)]
struct ModelQueue {
    /// (page, best key, insertion sequence of the best admission)
    pending: Vec<(u32, u16, u64)>,
    done: std::collections::HashSet<u32>,
    seq: u64,
}

impl ModelQueue {
    fn push(&mut self, e: Entry) -> bool {
        if self.done.contains(&e.page) {
            return false;
        }
        let key = ((e.priority as u16) << 8) | e.distance as u16;
        self.seq += 1;
        match self.pending.iter_mut().find(|(p, _, _)| *p == e.page) {
            Some(slot) => {
                if key < slot.1 {
                    slot.1 = key;
                    slot.2 = self.seq;
                    true
                } else {
                    false
                }
            }
            None => {
                self.pending.push((e.page, key, self.seq));
                true
            }
        }
    }

    fn pop(&mut self) -> Option<u32> {
        // Lowest priority level first; FIFO (insertion seq) within level.
        let idx = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, key, seq))| ((key >> 8), *seq))
            .map(|(i, _)| i)?;
        let (page, _, _) = self.pending.remove(idx);
        self.done.insert(page);
        Some(page)
    }
}

fn arb_ops() -> impl Strategy<Value = Vec<(u8, u32, u8, u8)>> {
    // (op, page, priority, distance): op 0..3 = push, 3 = pop.
    proptest::collection::vec(
        (0u8..4, 0u32..64, 0u8..4, 0u8..4),
        1..400,
    )
}

proptest! {
    /// The production queue and the reference model agree on every pop,
    /// under arbitrary interleavings of pushes (including duplicates and
    /// re-prioritizations) and pops.
    #[test]
    fn queue_matches_reference_model(ops in arb_ops()) {
        let mut real = UrlQueue::new(64, 4);
        let mut model = ModelQueue::default();
        for (op, page, priority, distance) in ops {
            if op < 3 {
                let e = Entry { page, priority, distance };
                prop_assert_eq!(real.push(e), model.push(e), "push {:?}", e);
            } else {
                prop_assert_eq!(real.pop().map(|e| e.page), model.pop());
            }
        }
        // Drain both fully.
        loop {
            let a = real.pop().map(|e| e.page);
            let b = model.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// pending() always equals the count of distinct admitted-not-popped
    /// pages, regardless of duplicates.
    #[test]
    fn queue_pending_counts_distinct(ops in arb_ops()) {
        let mut real = UrlQueue::new(64, 4);
        let mut admitted = std::collections::HashSet::new();
        let mut popped = 0usize;
        for (op, page, priority, distance) in ops {
            if op < 3 {
                real.push(Entry { page, priority, distance });
                if real.was_admitted(page) {
                    admitted.insert(page);
                }
            } else if real.pop().is_some() {
                popped += 1;
            }
        }
        prop_assert_eq!(real.pending(), admitted.len() - popped);
    }
}

// ------------------------------------------------------------- simulator

fn arb_strategy() -> impl Strategy<Value = u8> {
    0u8..7
}

fn build_strategy(code: u8) -> Box<dyn langcrawl_core::strategy::Strategy> {
    match code {
        0 => Box::new(BreadthFirst::new()),
        1 => Box::new(SimpleStrategy::hard()),
        2 => Box::new(SimpleStrategy::soft()),
        3 => Box::new(LimitedDistanceStrategy::non_prioritized(2)),
        4 => Box::new(LimitedDistanceStrategy::prioritized(3)),
        5 => Box::new(CombinedStrategy::soft_limited(2)),
        _ => Box::new(CombinedStrategy::hard_limited(1)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crawl-level invariants hold for every strategy, seed and budget:
    /// monotone series, coverage ≤ 1, queue accounting consistent, no
    /// page crawled twice (crawled ≤ space size).
    #[test]
    fn crawl_invariants(
        code in arb_strategy(),
        seed in 0u64..1000,
        budget in proptest::option::of(100u64..3000),
        filter in any::<bool>(),
    ) {
        let ws = GeneratorConfig::thai_like().scaled(4_000).build(seed);
        let mut config = SimConfig {
            max_pages: budget,
            ..SimConfig::default()
        };
        if filter {
            config = config.with_url_filter();
        }
        let mut sim = Simulator::new(&ws, config.clone());
        let mut strategy = build_strategy(code);
        let classifier = MetaClassifier::target(ws.target_language());
        let r = sim.run(strategy.as_mut(), &classifier);

        prop_assert!(r.crawled <= ws.num_pages() as u64);
        if let Some(b) = budget {
            prop_assert!(r.crawled <= b);
        }
        prop_assert!(r.relevant_crawled <= r.crawled);
        prop_assert!(r.final_coverage() <= 1.0 + 1e-12);
        prop_assert!(r.final_harvest() <= 1.0 + 1e-12);
        let mut prev = (0u64, 0u64);
        for s in &r.samples {
            prop_assert!(s.crawled > prev.0);
            prop_assert!(s.relevant >= prev.1);
            prop_assert!(s.relevant <= s.crawled);
            prop_assert!(s.queue_size <= ws.num_pages());
            prev = (s.crawled, s.relevant);
        }
        prop_assert_eq!(r.samples.last().map(|s| s.crawled), Some(r.crawled));
    }

    /// Oracle-classified soft-focused crawling always reaches exactly
    /// 100% coverage, whatever the seed — the generator's reachability
    /// guarantee seen through the whole simulator stack.
    #[test]
    fn soft_oracle_always_full_coverage(seed in 0u64..500) {
        let ws = GeneratorConfig::thai_like().scaled(3_000).build(seed);
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let r = sim.run(
            &mut SimpleStrategy::soft(),
            &OracleClassifier::target(ws.target_language()),
        );
        prop_assert!((r.final_coverage() - 1.0).abs() < 1e-12, "seed {seed}: {}", r.final_coverage());
    }

    /// The limited-distance crawl never exceeds its structural ceiling
    /// and its coverage is monotone in N for any seed.
    #[test]
    fn limited_distance_bounded_by_structure(seed in 0u64..200) {
        let ws = GeneratorConfig::thai_like().scaled(3_000).build(seed);
        let oracle = OracleClassifier::target(ws.target_language());
        let mut prev = 0.0f64;
        for n in [0u8, 1, 2, 4] {
            let mut sim = Simulator::new(&ws, SimConfig::default());
            let r = sim.run(&mut LimitedDistanceStrategy::non_prioritized(n), &oracle);
            let ceiling = langcrawl_webgraph::stats::relevant_coverage(
                &ws,
                &langcrawl_webgraph::stats::reachable_limited(&ws, n),
            );
            prop_assert!(
                r.final_coverage() <= ceiling + 1e-9,
                "N={n}: crawl {} exceeds structural ceiling {}",
                r.final_coverage(),
                ceiling
            );
            prop_assert!(r.final_coverage() + 1e-9 >= prev, "N={n} not monotone");
            prev = r.final_coverage();
        }
    }
}
