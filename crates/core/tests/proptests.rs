//! Property tests for the simulator core: both [`Frontier`]
//! implementations against a reference model parameterized by their pop
//! discipline, and crawl-level invariants over random spaces, strategies
//! and budgets.

use langcrawl_core::classifier::{MetaClassifier, OracleClassifier};
use langcrawl_core::frontier::{BestFirstFrontier, Frontier};
use langcrawl_core::queue::{Entry, UrlQueue};
use langcrawl_core::shard::ShardedFrontier;
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::{
    BreadthFirst, CombinedStrategy, LimitedDistanceStrategy, SimpleStrategy,
};
use langcrawl_minicheck::{check, check_default, Gen};
use langcrawl_webgraph::GeneratorConfig;

// ------------------------------------------------------------- frontier

/// How a frontier orders its pending set: the sort key computed from a
/// page's best admission `(key, seq)` pair. Lowest wins; FIFO seq breaks
/// ties in both disciplines.
type PopOrder = fn(u16, u64) -> (u16, u64);

/// [`UrlQueue`]: priority *level* only — distance never affects order.
fn bucketed_order(key: u16, seq: u64) -> (u16, u64) {
    (key >> 8, seq)
}

/// [`BestFirstFrontier`]: the full `(priority, distance)` key.
fn best_first_order(key: u16, seq: u64) -> (u16, u64) {
    (key, seq)
}

/// Reference model of a frontier: a sorted scan over explicit state,
/// generic over the pop discipline. Admission semantics (accept first
/// discovery or a strictly better key; never after done) are shared by
/// both implementations and fixed here.
struct ModelFrontier {
    /// (page, best key, insertion sequence of the best admission)
    pending: Vec<(u32, u16, u64)>,
    done: std::collections::HashSet<u32>,
    seq: u64,
    order: PopOrder,
}

impl ModelFrontier {
    fn new(order: PopOrder) -> Self {
        ModelFrontier {
            pending: Vec::new(),
            done: std::collections::HashSet::new(),
            seq: 0,
            order,
        }
    }

    fn push(&mut self, e: Entry) -> bool {
        if self.done.contains(&e.page) {
            return false;
        }
        let key = ((e.priority as u16) << 8) | e.distance as u16;
        self.seq += 1;
        match self.pending.iter_mut().find(|(p, _, _)| *p == e.page) {
            Some(slot) => {
                if key < slot.1 {
                    slot.1 = key;
                    slot.2 = self.seq;
                    true
                } else {
                    false
                }
            }
            None => {
                self.pending.push((e.page, key, self.seq));
                true
            }
        }
    }

    fn pop(&mut self) -> Option<u32> {
        let order = self.order;
        let idx = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, key, seq))| order(*key, *seq))
            .map(|(i, _)| i)?;
        let (page, _, _) = self.pending.remove(idx);
        self.done.insert(page);
        Some(page)
    }
}

/// (op, page, priority, distance): op 0..3 = push, 3 = pop.
fn arb_ops(g: &mut Gen) -> Vec<(u8, u32, u8, u8)> {
    g.vec(1..400, |g| {
        (g.u8(0..=3), g.u32(0..64), g.u8(0..=3), g.u8(0..=3))
    })
}

/// Drive a real frontier and the model through the same op sequence,
/// asserting agreement on every push verdict and every pop.
fn assert_matches_model<F: Frontier>(mut real: F, order: PopOrder, ops: &[(u8, u32, u8, u8)]) {
    let mut model = ModelFrontier::new(order);
    for &(op, page, priority, distance) in ops {
        if op < 3 {
            let e = Entry {
                page,
                priority,
                distance,
            };
            assert_eq!(real.push(e), model.push(e), "push {e:?}");
        } else {
            assert_eq!(real.pop().map(|e| e.page), model.pop());
        }
        assert_eq!(real.pending(), model.pending.len());
    }
    // Drain both fully.
    loop {
        let a = real.pop().map(|e| e.page);
        let b = model.pop();
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}

/// The bucketed queue and the reference model agree on every pop, under
/// arbitrary interleavings of pushes (including duplicates and
/// re-prioritizations) and pops.
#[test]
fn url_queue_matches_reference_model() {
    check_default(|g| {
        let ops = arb_ops(g);
        assert_matches_model(UrlQueue::new(64, 4), bucketed_order, &ops);
    });
}

/// The best-first heap frontier obeys the same contract under its own
/// pop discipline — the trait seam carries both policies faithfully.
#[test]
fn best_first_matches_reference_model() {
    check_default(|g| {
        let ops = arb_ops(g);
        assert_matches_model(BestFirstFrontier::new(64), best_first_order, &ops);
    });
}

/// For BOTH implementations: `pending()` always equals the count of
/// distinct admitted-not-popped pages regardless of duplicates and
/// re-prioritizations, and `done` pages never re-enter.
#[test]
fn frontier_pending_counts_distinct_and_done_is_final() {
    fn run(real: &mut dyn Frontier, ops: &[(u8, u32, u8, u8)]) {
        let mut admitted = std::collections::HashSet::new();
        let mut popped_pages = std::collections::HashSet::new();
        for &(op, page, priority, distance) in ops {
            if op < 3 {
                let accepted = real.push(Entry {
                    page,
                    priority,
                    distance,
                });
                if real.was_admitted(page) {
                    admitted.insert(page);
                }
                assert!(
                    !(accepted && popped_pages.contains(&page)),
                    "done page {page} re-entered the frontier"
                );
            } else if let Some(e) = real.pop() {
                assert!(popped_pages.insert(e.page), "page {} popped twice", e.page);
                assert!(real.is_done(e.page));
            }
            assert_eq!(real.pending(), admitted.len() - popped_pages.len());
            assert!(real.pending() <= real.max_pending());
        }
    }
    check_default(|g| {
        let ops = arb_ops(g);
        run(&mut UrlQueue::new(64, 4), &ops);
        run(&mut BestFirstFrontier::new(64), &ops);
    });
}

/// Pop order respects `(ordering key, FIFO)`: for any push-only prefix,
/// draining either frontier yields keys that never decrease under its
/// own discipline.
#[test]
fn frontier_pop_order_is_monotone_in_key() {
    fn drain_keys(real: &mut dyn Frontier, order: PopOrder) {
        let mut prev: Option<(u16, u64)> = None;
        let mut seq = 0u64;
        while let Some(e) = real.pop() {
            let key = ((e.priority as u16) << 8) | e.distance as u16;
            let k = (order(key, 0).0, seq);
            if let Some(p) = prev {
                assert!(k.0 >= p.0, "pop key went backwards: {p:?} then {k:?}");
            }
            prev = Some(k);
            seq += 1;
        }
    }
    check_default(|g| {
        let pushes = g.vec(1..200, |g| Entry {
            page: g.u32(0..64),
            priority: g.u8(0..=3),
            distance: g.u8(0..=3),
        });
        let mut q = UrlQueue::new(64, 4);
        let mut b = BestFirstFrontier::new(64);
        for &e in &pushes {
            q.push(e);
            Frontier::push(&mut b, e);
        }
        drain_keys(&mut q, bucketed_order);
        drain_keys(&mut b, best_first_order);
    });
}

/// The sharded frontier is [`UrlQueue`] with different storage: under
/// random push/pop/**requeue** interleavings (requeue is the engine's
/// retry re-admission path, with its own semantics on done pages) the
/// two agree on every verdict, every popped entry, and all accounting —
/// with one shard and with several, since each ready host exposes
/// exactly its minimum entry and the global minimum is shard-invariant.
#[test]
fn sharded_frontier_matches_url_queue_including_requeue() {
    /// (op, page, priority, distance): op 0..3 = push, 3 = pop,
    /// 4 = requeue.
    fn arb_requeue_ops(g: &mut Gen) -> Vec<(u8, u32, u8, u8)> {
        g.vec(1..400, |g| {
            (g.u8(0..=4), g.u32(0..64), g.u8(0..=3), g.u8(0..=3))
        })
    }
    check_default(|g| {
        let ops = arb_requeue_ops(g);
        for shards in [1usize, 3] {
            let mut q = UrlQueue::new(64, 4);
            // 64 pages over 7 hosts, striped so shards interleave.
            let hosts: Vec<u32> = (0..64).map(|p| p % 7).collect();
            let mut s = ShardedFrontier::new(hosts, 7, 4, shards);
            for &(op, page, priority, distance) in &ops {
                let e = Entry {
                    page,
                    priority,
                    distance,
                };
                match op {
                    0..=2 => assert_eq!(
                        Frontier::push(&mut q, e),
                        s.push(e),
                        "push {e:?} ({shards} shards)"
                    ),
                    3 => assert_eq!(Frontier::pop(&mut q), s.pop(), "{shards} shards"),
                    _ => assert_eq!(
                        Frontier::requeue(&mut q, e),
                        s.requeue(e),
                        "requeue {e:?} ({shards} shards)"
                    ),
                }
                assert_eq!(Frontier::pending(&q), s.pending());
                assert_eq!(Frontier::max_pending(&q), s.max_pending());
                assert_eq!(Frontier::total_pushes(&q), s.total_pushes());
                assert_eq!(Frontier::is_done(&q, page), s.is_done(page));
                assert_eq!(Frontier::was_admitted(&q, page), s.was_admitted(page));
            }
            // Drain both fully: the tails must agree entry by entry.
            loop {
                let a = Frontier::pop(&mut q);
                let b = s.pop();
                assert_eq!(a, b, "{shards} shards");
                if a.is_none() {
                    break;
                }
            }
        }
    });
}

// ------------------------------------------------------------- simulator

fn build_strategy(code: u8) -> Box<dyn langcrawl_core::strategy::Strategy> {
    match code {
        0 => Box::new(BreadthFirst::new()),
        1 => Box::new(SimpleStrategy::hard()),
        2 => Box::new(SimpleStrategy::soft()),
        3 => Box::new(LimitedDistanceStrategy::non_prioritized(2)),
        4 => Box::new(LimitedDistanceStrategy::prioritized(3)),
        5 => Box::new(CombinedStrategy::soft_limited(2)),
        _ => Box::new(CombinedStrategy::hard_limited(1)),
    }
}

/// Crawl-level invariants hold for every strategy, seed and budget:
/// monotone series, coverage ≤ 1, queue accounting consistent, no page
/// crawled twice (crawled ≤ space size).
#[test]
fn crawl_invariants() {
    check(12, |g| {
        let code = g.u8(0..=6);
        let seed = g.u64(0..1000);
        let budget = g.option(|g| g.u64(100..3000));
        let filter = g.bool(0.5);

        let ws = GeneratorConfig::thai_like().scaled(4_000).build(seed);
        let mut config = SimConfig {
            max_pages: budget,
            ..SimConfig::default()
        };
        if filter {
            config = config.with_url_filter();
        }
        let mut sim = Simulator::new(&ws, config.clone());
        let mut strategy = build_strategy(code);
        let classifier = MetaClassifier::target(ws.target_language());
        let r = sim.run(strategy.as_mut(), &classifier);

        assert!(r.crawled <= ws.num_pages() as u64);
        if let Some(b) = budget {
            assert!(r.crawled <= b);
        }
        assert!(r.relevant_crawled <= r.crawled);
        assert!(r.final_coverage() <= 1.0 + 1e-12);
        assert!(r.final_harvest() <= 1.0 + 1e-12);
        let mut prev = (0u64, 0u64);
        for s in &r.samples {
            assert!(s.crawled > prev.0);
            assert!(s.relevant >= prev.1);
            assert!(s.relevant <= s.crawled);
            assert!(s.queue_size <= ws.num_pages());
            prev = (s.crawled, s.relevant);
        }
        assert_eq!(r.samples.last().map(|s| s.crawled), Some(r.crawled));
    });
}

/// Oracle-classified soft-focused crawling always reaches exactly 100%
/// coverage, whatever the seed — the generator's reachability guarantee
/// seen through the whole simulator stack.
#[test]
fn soft_oracle_always_full_coverage() {
    check(12, |g| {
        let seed = g.u64(0..500);
        let ws = GeneratorConfig::thai_like().scaled(3_000).build(seed);
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let r = sim.run(
            &mut SimpleStrategy::soft(),
            &OracleClassifier::target(ws.target_language()),
        );
        assert!(
            (r.final_coverage() - 1.0).abs() < 1e-12,
            "seed {seed}: {}",
            r.final_coverage()
        );
    });
}

/// The limited-distance crawl never exceeds its structural ceiling and
/// its coverage is monotone in N for any seed.
#[test]
fn limited_distance_bounded_by_structure() {
    check(12, |g| {
        let seed = g.u64(0..200);
        let ws = GeneratorConfig::thai_like().scaled(3_000).build(seed);
        let oracle = OracleClassifier::target(ws.target_language());
        let mut prev = 0.0f64;
        for n in [0u8, 1, 2, 4] {
            let mut sim = Simulator::new(&ws, SimConfig::default());
            let r = sim.run(&mut LimitedDistanceStrategy::non_prioritized(n), &oracle);
            let ceiling = langcrawl_webgraph::stats::relevant_coverage(
                &ws,
                &langcrawl_webgraph::stats::reachable_limited(&ws, n),
            );
            assert!(
                r.final_coverage() <= ceiling + 1e-9,
                "N={n}: crawl {} exceeds structural ceiling {}",
                r.final_coverage(),
                ceiling
            );
            assert!(r.final_coverage() + 1e-9 >= prev, "N={n} not monotone");
            prev = r.final_coverage();
        }
    });
}
