//! Scheduler conformance: the virtual-time scheduler at `K = 1` with
//! zero politeness must be **bit-identical** to the legacy engine, and
//! multi-slot schedules must themselves be pinned and thread-invariant.
//!
//! Three layers of pinning:
//!
//! 1. A single-slot scheduled run is hashed against the *same* golden
//!    constants the `fault_conformance` suite pins for the legacy
//!    engine (captured before the fault subsystem existed). Any
//!    divergence between the two run paths — ordering, sampling,
//!    counters, visit order — shows up as a hash mismatch here.
//! 2. Multi-slot runs (`K ∈ {2, 8}`) get their own golden hashes: the
//!    schedule is a pure function of (space seed, config), so these pin
//!    the scheduler's tie-break discipline across time.
//! 3. The same hashes are asserted under different `LANGCRAWL_THREADS`
//!    settings (which parallelize space *generation*): the constants
//!    are absolute, so running this binary under any thread count — as
//!    CI does — proves thread-invariance end to end, and the in-process
//!    sweep below re-generates the space under several settings for
//!    good measure.

use langcrawl_core::classifier::{MetaClassifier, OracleClassifier};
use langcrawl_core::metrics::CrawlReport;
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::{BreadthFirst, LimitedDistanceStrategy, SimpleStrategy};
use langcrawl_webgraph::GeneratorConfig;

/// FNV-1a over the pre-fault-model report fields — byte-for-byte the
/// same folding as `fault_conformance::report_hash`, so hashes are
/// comparable across the two suites. (`ticks` and the fault counters
/// are deliberately excluded: the legacy goldens predate them.)
fn report_hash(r: &CrawlReport) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold_bytes = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    fold_bytes(r.strategy.as_bytes());
    fold_bytes(r.classifier.as_bytes());
    let mut fold = |x: u64| {
        for b in x.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    fold(r.samples.len() as u64);
    for s in &r.samples {
        fold(s.crawled);
        fold(s.relevant);
        fold(s.queue_size as u64);
    }
    fold(r.crawled);
    fold(r.relevant_crawled);
    fold(r.total_relevant);
    fold(r.max_queue as u64);
    fold(r.total_pushes);
    fold(r.visited.len() as u64);
    for &v in &r.visited {
        fold(v as u64);
    }
    h
}

/// The pinned space: same preset/scale/seed as `fault_conformance` and
/// `engine_parity`.
fn space() -> langcrawl_webgraph::WebSpace {
    GeneratorConfig::thai_like().scaled(12_000).build(41)
}

/// The three pinned strategy/classifier pairs, run under the scheduler
/// with `k` slots and zero politeness.
fn scheduled_runs(ws: &langcrawl_webgraph::WebSpace, k: u32) -> Vec<(&'static str, CrawlReport)> {
    scheduled_runs_sharded(ws, k, 0)
}

/// Same, with an explicit shard count. `shards > 0` forces the sharded
/// frontier even at `K = 1`, where the default (`0`) elides it.
fn scheduled_runs_sharded(
    ws: &langcrawl_webgraph::WebSpace,
    k: u32,
    shards: u32,
) -> Vec<(&'static str, CrawlReport)> {
    let mut config = SimConfig::default().with_visit_recording().with_workers(k);
    if shards > 0 {
        config = config.with_shards(shards);
    }
    let mut sim = Simulator::new(ws, config);
    vec![
        (
            "breadth_first/oracle",
            sim.run(
                &mut BreadthFirst::new(),
                &OracleClassifier::target(ws.target_language()),
            ),
        ),
        (
            "soft_focused/meta",
            sim.run(
                &mut SimpleStrategy::soft(),
                &MetaClassifier::target(ws.target_language()),
            ),
        ),
        (
            "limited_distance_3/oracle",
            sim.run(
                &mut LimitedDistanceStrategy::prioritized(3),
                &OracleClassifier::target(ws.target_language()),
            ),
        ),
    ]
}

// The legacy-engine goldens, copied verbatim from `fault_conformance`
// (captured from the pre-fault-model engine): a `K = 1`, politeness-0
// scheduled run must reproduce them exactly.
const GOLDEN_BF: u64 = 0x5af6_b0d1_35f4_3b35;
const GOLDEN_SOFT: u64 = 0x8cbf_d1f5_bf63_739f;
const GOLDEN_LIMITED: u64 = 0x6080_ba7a_e671_6b67;

// Multi-slot goldens, captured from the scheduler at introduction.
// Regenerate only for a deliberate, documented schedule change; on
// mismatch the test prints the observed values.
const GOLDEN_K2: [u64; 3] = [
    0x9e92_bf6c_6a79_dc0e, // breadth_first/oracle
    0x1b21_af96_4b40_f9db, // soft_focused/meta
    0xae79_a33a_f27e_64a6, // limited_distance_3/oracle
];
const GOLDEN_K8: [u64; 3] = [
    0x18ba_6448_afa8_6b58, // breadth_first/oracle
    0xe3fc_e642_5692_c557, // soft_focused/meta
    0xe1c6_e933_dab2_3754, // limited_distance_3/oracle
];

#[test]
fn single_slot_scheduled_runs_match_legacy_goldens() {
    let ws = space();
    let mut bad = Vec::new();
    for ((name, report), golden) in
        scheduled_runs(&ws, 1)
            .iter()
            .zip([GOLDEN_BF, GOLDEN_SOFT, GOLDEN_LIMITED])
    {
        let got = report_hash(report);
        if got != golden {
            bad.push(format!(
                "{name}: K=1 scheduled hash {got:#018x} != legacy golden {golden:#018x}"
            ));
        }
    }
    assert!(bad.is_empty(), "{}", bad.join("\n"));
}

/// The same pinning with the frontier elision defeated: an explicit
/// shard count forces a `K = 1` schedule *through the sharded
/// frontier*, at one shard and several. Any shard-count-dependent
/// ordering, accounting, or handoff effect on the crawl shows up here.
#[test]
fn single_slot_sharded_schedules_match_legacy_goldens() {
    let ws = space();
    let mut bad = Vec::new();
    for shards in [1u32, 4] {
        for ((name, report), golden) in scheduled_runs_sharded(&ws, 1, shards).iter().zip([
            GOLDEN_BF,
            GOLDEN_SOFT,
            GOLDEN_LIMITED,
        ]) {
            let got = report_hash(report);
            if got != golden {
                bad.push(format!(
                    "{name}: K=1 {shards}-shard hash {got:#018x} != legacy golden {golden:#018x}"
                ));
            }
        }
    }
    assert!(bad.is_empty(), "{}", bad.join("\n"));
}

#[test]
fn multi_slot_schedules_match_their_goldens() {
    let ws = space();
    let mut bad = Vec::new();
    for (k, goldens) in [(2u32, GOLDEN_K2), (8, GOLDEN_K8)] {
        for ((name, report), golden) in scheduled_runs(&ws, k).iter().zip(goldens) {
            let got = report_hash(report);
            if got != golden {
                bad.push(format!(
                    "{name}: K={k} hash {got:#018x} != golden {golden:#018x}"
                ));
            }
        }
    }
    assert!(bad.is_empty(), "{}", bad.join("\n"));
}

/// Multi-slot schedules do the same *work* as the legacy engine — same
/// pages, same harvest — they only overlap fetches in time, shrinking
/// the makespan. (The visit *order* differs, which is why K>1 has its
/// own goldens above. Push *totals* are only order-independent under
/// breadth-first, where all admission keys are equal; prioritizing
/// strategies accept a re-prioritization only when it is strictly
/// better *at that moment*, so their totals move with the schedule.)
#[test]
fn multi_slot_schedules_preserve_totals_and_shrink_makespan() {
    let ws = space();
    let k1 = scheduled_runs(&ws, 1);
    for k in [2u32, 8] {
        for ((name, base), (_, run)) in k1.iter().zip(scheduled_runs(&ws, k)) {
            assert_eq!(run.crawled, base.crawled, "{name} K={k}");
            assert_eq!(run.relevant_crawled, base.relevant_crawled, "{name} K={k}");
            if *name == "breadth_first/oracle" {
                assert_eq!(run.total_pushes, base.total_pushes, "{name} K={k}");
            }
            assert!(
                run.ticks < base.ticks,
                "{name} K={k}: makespan {} must beat K=1's {}",
                run.ticks,
                base.ticks
            );
        }
    }
}

/// Re-generate the space and re-run the schedule under several
/// `LANGCRAWL_THREADS` settings in-process: every hash must stay put.
/// (Generation reads the variable afresh per build; determinism of the
/// per-host PRNG streams makes the space identical for any chunking, and
/// the scheduler never looks at thread count at all.)
#[test]
fn schedules_are_invariant_across_thread_settings() {
    let mut baseline: Option<Vec<u64>> = None;
    for threads in ["1", "4"] {
        std::env::set_var("LANGCRAWL_THREADS", threads);
        let ws = space();
        let mut hashes = Vec::new();
        for k in [1u32, 2, 8] {
            for (_, report) in scheduled_runs(&ws, k) {
                hashes.push(report_hash(&report));
            }
        }
        match &baseline {
            None => baseline = Some(hashes),
            Some(b) => assert_eq!(
                b, &hashes,
                "schedule hashes changed under LANGCRAWL_THREADS={threads}"
            ),
        }
    }
    std::env::remove_var("LANGCRAWL_THREADS");
}
