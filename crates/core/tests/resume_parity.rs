//! Resume parity: a crawl snapshotted at tick T, dropped, and resumed
//! must finish **bit-for-bit identical** to the uninterrupted run —
//! same final outcome (cumulative counters, makespan), same visit
//! sequence (the resumed run emits exactly the suffix), same metrics
//! series — across strategies × worker counts × fault rates.
//!
//! Three layers of pinning:
//!
//! 1. Capture is observation-only: a capturing run's outcome, samples
//!    and visits equal a non-capturing run's, and the zero-fault cells
//!    are additionally hashed against the *same* golden constants the
//!    `sched_conformance` suite pins — interrupting and resuming a
//!    crawl cannot drift the pinned schedule.
//! 2. Early, middle and late snapshots all resume to the identical
//!    end state, for both frontier kinds (the degenerate `K = 1` rings
//!    and the sharded frontier) and with the retry/backoff machinery
//!    live (fault rate 0.2).
//! 3. Snapshot *bytes* are thread-invariant: regenerating the space
//!    under different `LANGCRAWL_THREADS` settings yields identical
//!    framed snapshots, so a checkpoint taken on one machine
//!    configuration resumes on another.
//!
//! When `LANGCRAWL_SNAPSHOT_DIR` is set (as CI does), every snapshot
//! picked for resumption is also written there before resuming, so a
//! parity failure leaves the offending fixture behind as an artifact.

use langcrawl_core::classifier::{Classifier, MetaClassifier, OracleClassifier};
use langcrawl_core::engine::{CrawlEngine, EngineConfig, EngineOutcome};
use langcrawl_core::event::{EventSink, MetricsSampler, VisitRecorder};
use langcrawl_core::metrics::Sample;
use langcrawl_core::sched::SchedConfig;
use langcrawl_core::strategy::{BreadthFirst, LimitedDistanceStrategy, SimpleStrategy, Strategy};
use langcrawl_core::{CrawlSnapshot, SnapshotLog};
use langcrawl_webgraph::{FaultConfig, GeneratorConfig, PageId, WebSpace};

/// The pinned space: same preset/scale/seed as the conformance suites.
fn space() -> WebSpace {
    GeneratorConfig::thai_like().scaled(12_000).build(41)
}

/// The pinned strategy/classifier cells, by short name (pairings as in
/// `sched_conformance::scheduled_runs`).
const STRATEGIES: [&str; 3] = ["bf", "soft", "limited"];

fn make_strategy(name: &str) -> Box<dyn Strategy> {
    match name {
        "bf" => Box::new(BreadthFirst::new()),
        "soft" => Box::new(SimpleStrategy::soft()),
        "limited" => Box::new(LimitedDistanceStrategy::prioritized(3)),
        other => panic!("unknown strategy cell {other}"),
    }
}

fn make_classifier(name: &str, ws: &WebSpace) -> Box<dyn Classifier> {
    match name {
        "soft" => Box::new(MetaClassifier::target(ws.target_language())),
        _ => Box::new(OracleClassifier::target(ws.target_language())),
    }
}

fn engine_config(ws: &WebSpace, fault_rate: f64) -> EngineConfig {
    EngineConfig {
        fault: if fault_rate > 0.0 {
            FaultConfig::with_rate(fault_rate)
        } else {
            ws.fault().clone()
        },
        ..EngineConfig::default()
    }
}

/// Everything observable about one run: final outcome, metrics series,
/// visit sequence.
#[derive(Debug, PartialEq)]
struct RunOut {
    outcome: EngineOutcome,
    samples: Vec<Sample>,
    visits: Vec<PageId>,
}

fn run_baseline(engine: &CrawlEngine<'_>, sched: &SchedConfig, strat: &str) -> RunOut {
    let mut strategy = make_strategy(strat);
    let classifier = make_classifier(strat, engine.web_space());
    let mut metrics = MetricsSampler::new();
    let mut visits = VisitRecorder::new();
    let outcome = {
        let mut sinks: [&mut dyn EventSink; 2] = [&mut metrics, &mut visits];
        engine.run_scheduled(sched, strategy.as_mut(), classifier.as_ref(), &mut sinks)
    };
    RunOut {
        outcome,
        samples: metrics.into_samples(),
        visits: visits.into_visited(),
    }
}

fn run_capturing(
    engine: &CrawlEngine<'_>,
    sched: &SchedConfig,
    strat: &str,
    every: u64,
    log: &mut SnapshotLog,
) -> RunOut {
    let mut strategy = make_strategy(strat);
    let classifier = make_classifier(strat, engine.web_space());
    let mut metrics = MetricsSampler::new();
    let mut visits = VisitRecorder::new();
    let (outcome, _) = {
        let mut sinks: [&mut dyn EventSink; 2] = [&mut metrics, &mut visits];
        engine.run_scheduled_snapshots(
            sched,
            strategy.as_mut(),
            classifier.as_ref(),
            &mut sinks,
            every,
            log,
        )
    };
    RunOut {
        outcome,
        samples: metrics.into_samples(),
        visits: visits.into_visited(),
    }
}

fn run_resumed(engine: &CrawlEngine<'_>, snap: &CrawlSnapshot, strat: &str) -> RunOut {
    let mut strategy = make_strategy(strat);
    let classifier = make_classifier(strat, engine.web_space());
    let mut metrics = MetricsSampler::new();
    let mut visits = VisitRecorder::new();
    let (outcome, _) = {
        let mut sinks: [&mut dyn EventSink; 2] = [&mut metrics, &mut visits];
        engine
            .resume(snap, strategy.as_mut(), classifier.as_ref(), &mut sinks)
            .expect("snapshot from a capture run must resume")
    };
    RunOut {
        outcome,
        samples: metrics.into_samples(),
        visits: visits.into_visited(),
    }
}

/// Dump a snapshot about to be resumed into `LANGCRAWL_SNAPSHOT_DIR`
/// (when set), so CI keeps the fixture as an artifact on failure.
fn dump_fixture(label: &str, tick: u64, bytes: &[u8]) {
    if let Ok(dir) = std::env::var("LANGCRAWL_SNAPSHOT_DIR") {
        if !dir.is_empty() {
            let _ = std::fs::create_dir_all(&dir);
            let path = std::path::Path::new(&dir).join(format!("fixture-{label}-t{tick}.snap"));
            let _ = std::fs::write(path, bytes);
        }
    }
}

/// Assert that `resumed`, started from `snap`, continues `full`
/// exactly: cumulative outcome, visit suffix, sample suffix.
fn assert_continues(ctx: &str, full: &RunOut, snap: &CrawlSnapshot, resumed: &RunOut) {
    assert_eq!(
        resumed.outcome, full.outcome,
        "{ctx}: resumed outcome diverged from the uninterrupted run"
    );
    let skip = snap.crawled() as usize;
    assert_eq!(
        resumed.visits,
        full.visits[skip..],
        "{ctx}: resumed visit sequence is not the uninterrupted run's suffix"
    );
    let expected: Vec<Sample> = full
        .samples
        .iter()
        .filter(|s| s.crawled > snap.crawled())
        .copied()
        .collect();
    assert_eq!(
        resumed.samples, expected,
        "{ctx}: resumed metrics series is not the uninterrupted run's suffix"
    );
}

/// Indices of the early / middle / late snapshots to resume from,
/// restricted to snapshots with work left (a capture can land on the
/// final tick, where nothing remains to replay through the samplers).
fn pick_indices(log: &SnapshotLog, final_crawled: u64) -> Vec<usize> {
    let live: Vec<usize> = log
        .snapshots()
        .iter()
        .enumerate()
        .filter(|(_, (_, bytes))| {
            CrawlSnapshot::from_bytes(bytes)
                .expect("captured snapshot must parse")
                .crawled()
                < final_crawled
        })
        .map(|(i, _)| i)
        .collect();
    let mut picks = vec![live[0], live[live.len() / 2], live[live.len() - 1]];
    picks.dedup();
    picks
}

/// The tentpole property, over the full matrix: strategy × `K ∈ {1, 8}`
/// × fault rate `{0, 0.2}`, snapshotting at early/middle/late ticks.
#[test]
fn resume_is_bit_identical_to_uninterrupted_runs() {
    let ws = space();
    for k in [1u32, 8] {
        for fault_rate in [0.0f64, 0.2] {
            for strat in STRATEGIES {
                let ctx = format!("{strat} K={k} fault={fault_rate}");
                let engine = CrawlEngine::new(&ws, engine_config(&ws, fault_rate));
                let sched = SchedConfig {
                    slots: k,
                    ..SchedConfig::default()
                };
                let full = run_baseline(&engine, &sched, strat);
                // ~6 snapshots spread across the run.
                let every = (full.outcome.ticks / 6).max(1);
                let mut log = SnapshotLog::new();
                let cap = run_capturing(&engine, &sched, strat, every, &mut log);
                assert_eq!(cap, full, "{ctx}: capture perturbed the crawl");
                assert!(!log.is_empty(), "{ctx}: no snapshot captured");
                for i in pick_indices(&log, full.outcome.crawled) {
                    let (tick, bytes) = &log.snapshots()[i];
                    dump_fixture(&format!("{strat}-k{k}-f{fault_rate}"), *tick, bytes);
                    let snap =
                        CrawlSnapshot::from_bytes(bytes).expect("captured snapshot must parse");
                    assert_eq!(snap.tick(), *tick, "{ctx}: header tick disagrees with sink");
                    snap.verify_space(&ws)
                        .expect("space fingerprint must match");
                    let resumed = run_resumed(&engine, &snap, strat);
                    assert_continues(&format!("{ctx} @t{tick}"), &full, &snap, &resumed);
                }
            }
        }
    }
}

/// The base case: the tick-0 snapshot of a crawl that has not started
/// resumes into the *entire* run — outcome, samples and visits all
/// equal the uninterrupted baseline.
#[test]
fn tick_zero_snapshot_resumes_into_the_whole_run() {
    let ws = space();
    for k in [1u32, 8] {
        for strat in STRATEGIES {
            let engine = CrawlEngine::new(&ws, engine_config(&ws, 0.2));
            let sched = SchedConfig {
                slots: k,
                ..SchedConfig::default()
            };
            let full = run_baseline(&engine, &sched, strat);
            let snap = engine.snapshot(&sched, make_strategy(strat).as_ref());
            assert_eq!(snap.tick(), 0);
            assert_eq!(snap.crawled(), 0);
            let resumed = run_resumed(&engine, &snap, strat);
            assert_eq!(resumed, full, "{strat} K={k}: tick-0 resume diverged");
        }
    }
}

/// A resumed run that captures again reproduces, as its very first
/// emission, the exact bytes it was resumed from — the codec's
/// round-trip fixed point, checked through the public API.
#[test]
fn resumed_capture_reemits_the_input_snapshot_byte_for_byte() {
    let ws = space();
    let engine = CrawlEngine::new(&ws, engine_config(&ws, 0.2));
    let sched = SchedConfig {
        slots: 8,
        ..SchedConfig::default()
    };
    let full = run_baseline(&engine, &sched, "soft");
    let every = (full.outcome.ticks / 4).max(1);
    let mut log = SnapshotLog::new();
    run_capturing(&engine, &sched, "soft", every, &mut log);
    for (tick, bytes) in log.snapshots() {
        let snap = CrawlSnapshot::from_bytes(bytes).expect("captured snapshot must parse");
        let mut strategy = make_strategy("soft");
        let classifier = make_classifier("soft", &ws);
        let mut relog = SnapshotLog::new();
        let mut sinks: [&mut dyn EventSink; 0] = [];
        engine
            .resume_snapshots(
                &snap,
                strategy.as_mut(),
                classifier.as_ref(),
                &mut sinks,
                every,
                &mut relog,
            )
            .expect("capture-run snapshot must resume");
        let (first_tick, first_bytes) = &relog.snapshots()[0];
        assert_eq!(first_tick, tick);
        assert_eq!(
            first_bytes, bytes,
            "re-capture at t{tick} is not byte-identical to the input snapshot"
        );
    }
}

/// Politeness state (per-host next-ready ticks) survives the
/// round-trip: a politeness-heavy schedule resumes bit-identically too.
#[test]
fn resume_preserves_politeness_state() {
    let ws = space();
    let engine = CrawlEngine::new(&ws, engine_config(&ws, 0.2));
    let sched = SchedConfig {
        slots: 4,
        politeness_gap: 2,
        politeness_spread: 3,
        ..SchedConfig::default()
    };
    let full = run_baseline(&engine, &sched, "soft");
    let every = (full.outcome.ticks / 5).max(1);
    let mut log = SnapshotLog::new();
    let cap = run_capturing(&engine, &sched, "soft", every, &mut log);
    assert_eq!(cap, full, "capture perturbed the polite crawl");
    for i in pick_indices(&log, full.outcome.crawled) {
        let (tick, bytes) = &log.snapshots()[i];
        let snap = CrawlSnapshot::from_bytes(bytes).expect("captured snapshot must parse");
        let resumed = run_resumed(&engine, &snap, "soft");
        assert_continues(&format!("polite @t{tick}"), &full, &snap, &resumed);
    }
}

/// Snapshot bytes are invariant under `LANGCRAWL_THREADS`: the space
/// regenerates identically for any generation chunking and the
/// scheduler never looks at thread count, so the framed snapshot
/// stream — tick for tick, byte for byte — stays put.
#[test]
fn snapshot_bytes_are_invariant_across_thread_settings() {
    let mut baseline: Option<Vec<(u64, Vec<u8>)>> = None;
    for threads in ["1", "4"] {
        std::env::set_var("LANGCRAWL_THREADS", threads);
        let ws = space();
        let engine = CrawlEngine::new(&ws, engine_config(&ws, 0.2));
        let sched = SchedConfig {
            slots: 8,
            ..SchedConfig::default()
        };
        let mut log = SnapshotLog::new();
        run_capturing(&engine, &sched, "soft", 200, &mut log);
        assert!(!log.is_empty());
        let snaps = log.snapshots().to_vec();
        match &baseline {
            None => baseline = Some(snaps),
            Some(b) => assert_eq!(
                b, &snaps,
                "snapshot bytes changed under LANGCRAWL_THREADS={threads}"
            ),
        }
    }
    std::env::remove_var("LANGCRAWL_THREADS");
}

// The golden cross-check: uninterrupted capture runs on the zero-fault
// cells must still hash to the constants `sched_conformance` pins
// (copied verbatim), so checkpointing cannot drift the pinned
// schedules. The fold replicates `sched_conformance::report_hash`
// field for field.
const GOLDEN_K1: [u64; 3] = [
    0x5af6_b0d1_35f4_3b35, // breadth_first/oracle
    0x8cbf_d1f5_bf63_739f, // soft_focused/meta
    0x6080_ba7a_e671_6b67, // limited_distance_3/oracle
];
const GOLDEN_K8: [u64; 3] = [
    0x18ba_6448_afa8_6b58, // breadth_first/oracle
    0xe3fc_e642_5692_c557, // soft_focused/meta
    0xe1c6_e933_dab2_3754, // limited_distance_3/oracle
];

fn report_hash(ws: &WebSpace, strat: &str, run: &RunOut) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold_bytes = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    fold_bytes(make_strategy(strat).name().as_bytes());
    fold_bytes(make_classifier(strat, ws).name().as_bytes());
    let mut fold = |x: u64| {
        for b in x.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    fold(run.samples.len() as u64);
    for s in &run.samples {
        fold(s.crawled);
        fold(s.relevant);
        fold(s.queue_size as u64);
    }
    fold(run.outcome.crawled);
    fold(run.outcome.relevant_crawled);
    fold(ws.total_relevant() as u64);
    fold(run.outcome.max_pending as u64);
    fold(run.outcome.total_pushes);
    fold(run.visits.len() as u64);
    for &v in &run.visits {
        fold(v as u64);
    }
    h
}

#[test]
fn capturing_runs_still_match_the_conformance_goldens() {
    let ws = space();
    let mut bad = Vec::new();
    for (k, goldens) in [(1u32, GOLDEN_K1), (8, GOLDEN_K8)] {
        for (strat, golden) in STRATEGIES.iter().zip(goldens) {
            let engine = CrawlEngine::new(&ws, engine_config(&ws, 0.0));
            let sched = SchedConfig {
                slots: k,
                ..SchedConfig::default()
            };
            let mut log = SnapshotLog::new();
            let cap = run_capturing(&engine, &sched, strat, 1_500, &mut log);
            assert!(!log.is_empty(), "{strat} K={k}: no snapshot captured");
            let got = report_hash(&ws, strat, &cap);
            if got != golden {
                bad.push(format!(
                    "{strat}: K={k} capturing hash {got:#018x} != golden {golden:#018x}"
                ));
            }
        }
    }
    assert!(bad.is_empty(), "{}", bad.join("\n"));
}
