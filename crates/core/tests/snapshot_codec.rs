//! Property and corruption tests for the crawl snapshot codec.
//!
//! Round-trip: over random spaces, schedules, fault rates, budgets and
//! strategies, every snapshot a capture run emits (a) survives
//! `to_bytes` → `from_bytes` unchanged and (b) resumes into the exact
//! uninterrupted end state. Corruption: truncation at any length, any
//! single flipped byte, wrong version tags, foreign magic and appended
//! garbage all come back as typed [`SnapshotError`]s — never a panic —
//! and resuming against the wrong space, engine config or strategy
//! shape is refused before any state is touched.

use langcrawl_core::classifier::{Classifier, OracleClassifier};
use langcrawl_core::engine::{CrawlEngine, EngineConfig, EngineOutcome};
use langcrawl_core::event::{EventSink, VisitRecorder};
use langcrawl_core::retry::RetryPolicy;
use langcrawl_core::sched::SchedConfig;
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::{BreadthFirst, LimitedDistanceStrategy, SimpleStrategy, Strategy};
use langcrawl_core::{CrawlSnapshot, SnapshotError, SnapshotLog};
use langcrawl_minicheck::{check, Gen};
use langcrawl_webgraph::{FaultConfig, GeneratorConfig, PageId, WebSpace};

fn arb_space(g: &mut Gen) -> WebSpace {
    let scale = g.u32(600..2_200);
    let seed = g.u64(1..1_000);
    GeneratorConfig::thai_like().scaled(scale).build(seed)
}

fn arb_sched(g: &mut Gen) -> SchedConfig {
    SchedConfig {
        slots: g.u32(1..8),
        shards: g.u32(0..4),
        politeness_gap: g.u64(0..3),
        politeness_spread: g.u64(0..3),
    }
}

fn arb_config(g: &mut Gen, ws: &WebSpace) -> EngineConfig {
    EngineConfig {
        max_pages: g.option(|g| g.u64(100..700)),
        fault: if g.bool(0.5) {
            FaultConfig::with_rate(g.f64(0.05..0.3))
        } else {
            ws.fault().clone()
        },
        ..EngineConfig::default()
    }
}

/// Outcome plus visit order — the observable footprint compared across
/// interrupted and uninterrupted runs.
fn run_to_end(
    engine: &CrawlEngine<'_>,
    sched: &SchedConfig,
    strategy: &mut dyn Strategy,
    classifier: &dyn Classifier,
) -> (EngineOutcome, Vec<PageId>) {
    let mut visits = VisitRecorder::new();
    let outcome = {
        let mut sinks: [&mut dyn EventSink; 1] = [&mut visits];
        engine.run_scheduled(sched, strategy, classifier, &mut sinks)
    };
    (outcome, visits.into_visited())
}

/// Round-trip + resume-equality over arbitrary configurations: the
/// engine-level analogue of `resume_parity`'s pinned matrix.
#[test]
fn arbitrary_snapshots_roundtrip_and_resume_to_the_same_end_state() {
    check(24, |g| {
        let ws = arb_space(g);
        let sched = arb_sched(g);
        let config = arb_config(g, &ws);
        let engine = CrawlEngine::new(&ws, config);
        let classifier = OracleClassifier::target(ws.target_language());
        let kind = g.u8(0..=2);
        let strategy_of = |k: u8| -> Box<dyn Strategy> {
            match k {
                0 => Box::new(BreadthFirst::new()),
                1 => Box::new(SimpleStrategy::soft()),
                _ => Box::new(LimitedDistanceStrategy::prioritized(3)),
            }
        };
        let (full_outcome, full_visits) =
            run_to_end(&engine, &sched, strategy_of(kind).as_mut(), &classifier);
        let every = g.u64(1..(full_outcome.ticks / 2).max(2));
        let mut log = SnapshotLog::new();
        let (cap_outcome, _) = {
            let mut visits = VisitRecorder::new();
            let mut sinks: [&mut dyn EventSink; 1] = [&mut visits];
            engine.run_scheduled_snapshots(
                &sched,
                strategy_of(kind).as_mut(),
                &classifier,
                &mut sinks,
                every,
                &mut log,
            )
        };
        assert_eq!(cap_outcome, full_outcome, "capture perturbed the crawl");
        assert!(!log.is_empty(), "no snapshot captured at every={every}");
        let (_, bytes) = &log.snapshots()[g.usize(0..log.len())];
        let snap = CrawlSnapshot::from_bytes(bytes).expect("captured snapshot must parse");
        assert_eq!(
            CrawlSnapshot::from_bytes(&snap.to_bytes()).expect("re-encoded bytes must parse"),
            snap,
            "to_bytes/from_bytes round trip changed the snapshot"
        );
        let (resumed_outcome, resumed_visits) = {
            let mut strategy = strategy_of(kind);
            let mut visits = VisitRecorder::new();
            let mut sinks: [&mut dyn EventSink; 1] = [&mut visits];
            let (o, _) = engine
                .resume(&snap, strategy.as_mut(), &classifier, &mut sinks)
                .expect("snapshot from a capture run must resume");
            (o, visits.into_visited())
        };
        assert_eq!(resumed_outcome, full_outcome, "resumed outcome diverged");
        assert_eq!(
            resumed_visits,
            full_visits[snap.crawled() as usize..],
            "resumed visits are not the uninterrupted suffix"
        );
    });
}

/// One pinned mid-crawl snapshot for the corruption tests.
fn fixture() -> (WebSpace, EngineConfig, Vec<u8>) {
    let ws = GeneratorConfig::thai_like().scaled(2_000).build(7);
    let config = EngineConfig {
        fault: FaultConfig::with_rate(0.2),
        ..EngineConfig::default()
    };
    let engine = CrawlEngine::new(&ws, config.clone());
    let sched = SchedConfig {
        slots: 4,
        ..SchedConfig::default()
    };
    let mut log = SnapshotLog::new();
    let mut strategy = SimpleStrategy::soft();
    let classifier = OracleClassifier::target(ws.target_language());
    let mut sinks: [&mut dyn EventSink; 0] = [];
    engine.run_scheduled_snapshots(
        &sched,
        &mut strategy,
        &classifier,
        &mut sinks,
        150,
        &mut log,
    );
    let (_, bytes) = &log.snapshots()[log.len() / 2];
    (ws, config, bytes.clone())
}

/// Truncating the file at *any* length yields a typed error, never a
/// panic and never a silently shortened crawl.
#[test]
fn every_truncation_is_rejected() {
    let (_, _, bytes) = fixture();
    // Every length near the header plus a sweep through the payload.
    let mut cuts: Vec<usize> = (0..32.min(bytes.len())).collect();
    cuts.extend((0..bytes.len()).step_by(97));
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        let err = CrawlSnapshot::from_bytes(&bytes[..cut])
            .expect_err("truncated snapshot must not parse");
        assert!(
            matches!(
                err,
                SnapshotError::Truncated
                    | SnapshotError::BadMagic
                    | SnapshotError::UnsupportedVersion(_)
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
}

/// Any single flipped byte — header, length, payload or checksum — is
/// caught. The checksum covers the payload; the frame fields are each
/// validated structurally.
#[test]
fn every_single_byte_flip_is_rejected() {
    let (_, _, bytes) = fixture();
    check(64, |g| {
        let i = g.usize(0..bytes.len());
        let mut bad = bytes.clone();
        bad[i] ^= 1 << g.u8(0..=7);
        CrawlSnapshot::from_bytes(&bad).expect_err("a corrupted snapshot must not parse");
    });
}

#[test]
fn flipped_checksum_byte_is_a_checksum_mismatch() {
    let (_, _, mut bytes) = fixture();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    assert_eq!(
        CrawlSnapshot::from_bytes(&bytes).unwrap_err(),
        SnapshotError::ChecksumMismatch
    );
}

#[test]
fn wrong_version_tag_is_unsupported() {
    let (_, _, mut bytes) = fixture();
    // The version u32 sits right after the 8-byte magic.
    bytes[8] = 99;
    assert_eq!(
        CrawlSnapshot::from_bytes(&bytes).unwrap_err(),
        SnapshotError::UnsupportedVersion(99)
    );
}

#[test]
fn foreign_magic_is_rejected() {
    let (_, _, mut bytes) = fixture();
    bytes[0] = b'X';
    assert_eq!(
        CrawlSnapshot::from_bytes(&bytes).unwrap_err(),
        SnapshotError::BadMagic
    );
}

#[test]
fn appended_garbage_is_rejected() {
    let (_, _, mut bytes) = fixture();
    bytes.push(0);
    assert_eq!(
        CrawlSnapshot::from_bytes(&bytes).unwrap_err(),
        SnapshotError::Malformed("trailing bytes after checksum")
    );
}

/// Resuming against a *different* space — regenerated from another seed
/// — is refused by the fingerprint check before any decoding of state.
#[test]
fn mismatched_space_fingerprint_is_rejected() {
    let (_, config, bytes) = fixture();
    let snap = CrawlSnapshot::from_bytes(&bytes).expect("fixture must parse");
    let other = GeneratorConfig::thai_like().scaled(2_000).build(8);
    let engine = CrawlEngine::new(&other, config);
    let mut strategy = SimpleStrategy::soft();
    let classifier = OracleClassifier::target(other.target_language());
    let mut sinks: [&mut dyn EventSink; 0] = [];
    let err = engine
        .resume(&snap, &mut strategy, &classifier, &mut sinks)
        .expect_err("resume on the wrong space must be refused");
    assert!(
        matches!(err, SnapshotError::SpaceMismatch { .. }),
        "unexpected error {err:?}"
    );
    // verify_space reports the same refusal without an engine.
    assert!(snap.verify_space(&other).is_err());
}

/// Resuming under a different engine configuration (here: another
/// retry policy) is refused — a checkpoint cannot silently continue
/// under different crawl semantics.
#[test]
fn mismatched_engine_config_is_rejected() {
    let (ws, config, bytes) = fixture();
    let snap = CrawlSnapshot::from_bytes(&bytes).expect("fixture must parse");
    let engine = CrawlEngine::new(
        &ws,
        EngineConfig {
            retry: RetryPolicy {
                max_attempts: 7,
                ..config.retry
            },
            ..config
        },
    );
    let mut strategy = SimpleStrategy::soft();
    let classifier = OracleClassifier::target(ws.target_language());
    let mut sinks: [&mut dyn EventSink; 0] = [];
    assert_eq!(
        engine
            .resume(&snap, &mut strategy, &classifier, &mut sinks)
            .unwrap_err(),
        SnapshotError::ConfigMismatch("engine configuration")
    );
}

/// Resuming with a strategy of a different shape (level count) is
/// refused — the frontier's ring structure would not line up.
#[test]
fn mismatched_strategy_shape_is_rejected() {
    let (ws, config, bytes) = fixture();
    let snap = CrawlSnapshot::from_bytes(&bytes).expect("fixture must parse");
    let engine = CrawlEngine::new(&ws, config);
    // The fixture crawled with soft (2 levels); breadth-first has 1.
    let mut strategy = BreadthFirst::new();
    let classifier = OracleClassifier::target(ws.target_language());
    let mut sinks: [&mut dyn EventSink; 0] = [];
    assert_eq!(
        engine
            .resume(&snap, &mut strategy, &classifier, &mut sinks)
            .unwrap_err(),
        SnapshotError::ConfigMismatch("strategy level count")
    );
}

/// Arbitrary byte soup never panics the decoder.
#[test]
fn random_bytes_never_panic_the_decoder() {
    check(128, |g| {
        let noise = g.bytes(0..200);
        let _ = CrawlSnapshot::from_bytes(&noise);
    });
}

/// The config-driven wiring end to end: a `Simulator` with
/// `with_snapshot_every` and `LANGCRAWL_SNAPSHOT_DIR` set writes framed
/// `crawl-*.snap` files that parse and resume into the reported end
/// state. (The only test in this binary that touches the variable.)
#[test]
fn simulator_env_wiring_writes_resumable_files() {
    let dir = std::env::temp_dir().join(format!("langcrawl-snap-wiring-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let prior = std::env::var("LANGCRAWL_SNAPSHOT_DIR").ok();
    std::env::set_var("LANGCRAWL_SNAPSHOT_DIR", &dir);
    let ws = GeneratorConfig::thai_like().scaled(2_000).build(7);
    let mut sim = Simulator::new(
        &ws,
        SimConfig::default()
            .with_workers(4)
            .with_snapshot_every(300),
    );
    let report = sim.run(
        &mut SimpleStrategy::soft(),
        &OracleClassifier::target(ws.target_language()),
    );
    match prior {
        Some(v) => std::env::set_var("LANGCRAWL_SNAPSHOT_DIR", v),
        None => std::env::remove_var("LANGCRAWL_SNAPSHOT_DIR"),
    }
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("snapshot dir must exist")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("crawl-") && n.ends_with(".snap"))
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no snapshot files written to {dir:?}");
    let bytes = std::fs::read(&files[files.len() / 2]).expect("snapshot file must read");
    let snap = CrawlSnapshot::from_bytes(&bytes).expect("written snapshot must parse");
    snap.verify_space(&ws).expect("fingerprint must match");
    let engine = CrawlEngine::new(
        &ws,
        EngineConfig {
            snapshot_every: Some(300),
            fault: ws.fault().clone(),
            ..EngineConfig::default()
        },
    );
    let mut strategy = SimpleStrategy::soft();
    let classifier = OracleClassifier::target(ws.target_language());
    let mut sinks: [&mut dyn EventSink; 0] = [];
    let (outcome, _) = engine
        .resume(&snap, &mut strategy, &classifier, &mut sinks)
        .expect("written snapshot must resume");
    assert_eq!(outcome.crawled, report.crawled);
    assert_eq!(outcome.relevant_crawled, report.relevant_crawled);
    let _ = std::fs::remove_dir_all(&dir);
}
