//! Developer diagnostic: queue-size shape of the simple strategy on the
//! presets (soft must dwarf hard, as in the paper's Fig. 5). Used to
//! calibrate the generator before the full fig5 harness runs.
use langcrawl_core::classifier::OracleClassifier;
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::SimpleStrategy;
use langcrawl_webgraph::GeneratorConfig;

fn main() {
    for (name, cfg) in [
        ("thai", GeneratorConfig::thai_like().scaled(120_000)),
        ("japanese", GeneratorConfig::japanese_like().scaled(120_000)),
    ] {
        let ws = cfg.build(42);
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let oracle = OracleClassifier::target(ws.target_language());
        let soft = sim.run(&mut SimpleStrategy::soft(), &oracle);
        let hard = sim.run(&mut SimpleStrategy::hard(), &oracle);
        let n = ws.num_pages() as f64;
        println!(
            "{name}: soft_max={} ({:.1}%) hard_max={} ({:.1}%) ratio={:.1} | soft_cov={:.3} hard_cov={:.3}",
            soft.max_queue, 100.0*soft.max_queue as f64/n,
            hard.max_queue, 100.0*hard.max_queue as f64/n,
            soft.max_queue as f64 / hard.max_queue as f64,
            soft.final_coverage(), hard.final_coverage(),
        );
    }
}
