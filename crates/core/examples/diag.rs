//! Developer diagnostic: what does the soft-focused crawler actually
//! fetch early on? Prints the composition (relevant / dead / foreign) of
//! the first sixth of a Thai-like crawl — the breakdown used to calibrate
//! the generator's trap-host and leaf-share knobs against Fig. 3.
use langcrawl_core::classifier::{Classifier, MetaClassifier};
use langcrawl_core::queue::{Entry, UrlQueue};
use langcrawl_core::strategy::{PageView, SimpleStrategy, Strategy};
use langcrawl_webgraph::{GeneratorConfig, PageKind};

fn main() {
    let ws = GeneratorConfig::thai_like().scaled(200_000).build(42);
    let cls = MetaClassifier::target(ws.target_language());
    let mut strat = SimpleStrategy::soft();
    let mut q = UrlQueue::new(ws.num_pages(), 2);
    for &s in ws.seeds() {
        q.push(Entry {
            page: s,
            priority: 0,
            distance: 0,
        });
    }
    let (
        mut crawled,
        mut rel,
        mut failed,
        mut other,
        mut irr_html_target_host,
        mut irr_html_other_host,
        mut rel_but_meta_miss,
    ) = (0u64, 0, 0, 0, 0, 0, 0);
    let mut adm = Vec::new();
    let budget = ws.num_pages() as u64 / 7;
    while let Some(e) = q.pop() {
        crawled += 1;
        let m = ws.meta(e.page);
        let relv = if m.is_ok_html() {
            cls.relevance(&ws, e.page)
        } else {
            0.0
        };
        if ws.is_relevant(e.page) {
            rel += 1;
            if relv < 0.5 {
                rel_but_meta_miss += 1;
            }
        } else {
            match m.kind {
                PageKind::Failed => failed += 1,
                PageKind::Other => other += 1,
                PageKind::Html => {
                    if ws.host_of(e.page).language == ws.target_language() {
                        irr_html_target_host += 1;
                    } else {
                        irr_html_other_host += 1;
                    }
                }
            }
        }
        let outs = if m.is_ok_html() {
            ws.outlinks(e.page)
        } else {
            &[]
        };
        let v = PageView {
            page: e.page,
            relevance: relv,
            consec_irrelevant: if relv > 0.5 { 0 } else { e.distance + 1 },
            outlinks: outs,
            crawled,
        };
        adm.clear();
        strat.admit(&v, &mut adm);
        for &a in &adm {
            if ws.meta(a.page).kind == PageKind::Other {
                continue;
            }
            q.push(a);
        }
        if crawled >= budget {
            break;
        }
    }
    println!(
        "first {} fetches: relevant={} ({:.1}%) [of which META-missed {}]",
        crawled,
        rel,
        100.0 * rel as f64 / crawled as f64,
        rel_but_meta_miss
    );
    println!(
        "  failed={} ({:.1}%) other={} irrHTMLtargetHost={} ({:.1}%) irrHTMLotherHost={} ({:.1}%)",
        failed,
        100.0 * failed as f64 / crawled as f64,
        other,
        irr_html_target_host,
        100.0 * irr_html_target_host as f64 / crawled as f64,
        irr_html_other_host,
        100.0 * irr_html_other_host as f64 / crawled as f64
    );
}
