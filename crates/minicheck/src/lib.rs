//! A tiny deterministic property-test harness.
//!
//! The workspace originally used `proptest`, but the default build must
//! compile offline with zero external crates. `minicheck` keeps the part
//! of property testing the test suites actually rely on:
//!
//! * [`check`] runs a property closure over N independently seeded cases
//!   and, on failure, reports the case index and seed so the exact input
//!   can be replayed (`MINICHECK_SEED=<base> cargo test <name>`);
//! * [`Gen`] is a seeded value source with combinators for the input
//!   shapes our tests draw (ranged ints, floats, vectors, alphabet
//!   strings, weighted choice, options).
//!
//! There is no shrinking: inputs here are small and structured, and every
//! failure is replayable by seed, which has proven enough in practice.
//! Determinism is absolute — no clock, no OS entropy — so a green suite
//! stays green.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use langcrawl_rng::{mix, Rng};
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of cases per property, matching proptest's default.
pub const DEFAULT_CASES: u32 = 256;

/// The base seed: `MINICHECK_SEED` env var if set, else a fixed constant.
fn base_seed() -> u64 {
    match std::env::var("MINICHECK_SEED") {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("MINICHECK_SEED must be a u64, got {v:?}")),
        Err(_) => 0x5EED_CAFE_F00D_D00D,
    }
}

/// Run `property` over `cases` deterministic cases. The property signals
/// failure by panicking (use the standard `assert!` family). On failure
/// the case index and base seed are printed before the panic propagates,
/// so the run can be reproduced exactly.
pub fn check<F: FnMut(&mut Gen)>(cases: u32, mut property: F) {
    let base = base_seed();
    for case in 0..cases {
        let seed = mix(base, case as u64);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut g = Gen::from_seed(seed);
            property(&mut g);
        }));
        if let Err(payload) = result {
            eprintln!(
                "minicheck: property failed on case {case}/{cases} \
                 (base seed {base}); rerun with MINICHECK_SEED={base}"
            );
            resume_unwind(payload);
        }
    }
}

/// Run a property over [`DEFAULT_CASES`] cases.
pub fn check_default<F: FnMut(&mut Gen)>(property: F) {
    check(DEFAULT_CASES, property);
}

/// A seeded generator of test inputs.
#[derive(Debug)]
pub struct Gen {
    rng: Rng,
}

impl Gen {
    /// Build a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Access the underlying [`Rng`] for draws the combinators don't cover.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Uniform `usize` in `range`.
    pub fn usize(&mut self, range: Range<usize>) -> usize {
        self.rng.random_range(range)
    }

    /// Uniform `u64` in `range`.
    pub fn u64(&mut self, range: Range<u64>) -> u64 {
        self.rng.random_range(range)
    }

    /// Uniform `u32` in `range`.
    pub fn u32(&mut self, range: Range<u32>) -> u32 {
        self.rng.random_range(range)
    }

    /// Uniform `u8` in an inclusive range (byte alphabets are inclusive).
    pub fn u8(&mut self, range: RangeInclusive<u8>) -> u8 {
        self.rng.random_range(range)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.unit_f64()
    }

    /// Uniform `f64` in `range`.
    pub fn f64(&mut self, range: Range<f64>) -> f64 {
        self.rng.random_range(range)
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.random_bool(p)
    }

    /// A reference to a uniformly chosen element of `items` (non-empty).
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "Gen::pick on empty slice");
        &items[self.rng.random_range(0..items.len())]
    }

    /// An index chosen by integer weight: `weighted(&[5, 1, 2])` returns
    /// 0 five-eighths of the time. Mirrors `prop_oneof![w => ...]`.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u32 = weights.iter().sum();
        assert!(total > 0, "Gen::weighted needs a positive total weight");
        let mut x = self.rng.random_range(0..total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        unreachable!("weight accounting is exhaustive")
    }

    /// `Some(value)` with probability one-half, mirroring
    /// `proptest::option::of`.
    pub fn option<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> Option<T> {
        if self.bool(0.5) {
            Some(f(self))
        } else {
            None
        }
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `f`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
        let n = self.usize(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// A string of `len` chars drawn uniformly from `alphabet`.
    pub fn string_of(&mut self, alphabet: &str, len: Range<usize>) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let n = self.usize(len);
        (0..n).map(|_| *self.pick(&chars)).collect()
    }

    /// Arbitrary bytes (full 0..=255 range), the `any::<u8>()` analogue.
    pub fn bytes(&mut self, len: Range<usize>) -> Vec<u8> {
        self.vec(len, |g| g.u8(0..=255))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_is_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        check(16, |g| first.push(g.u64(0..1_000_000)));
        let mut second: Vec<u64> = Vec::new();
        check(16, |g| second.push(g.u64(0..1_000_000)));
        assert_eq!(first, second);
    }

    #[test]
    fn cases_are_independent() {
        let mut draws: Vec<u64> = Vec::new();
        check(32, |g| draws.push(g.u64(0..u64::MAX)));
        draws.sort_unstable();
        draws.dedup();
        assert_eq!(draws.len(), 32, "cases repeated a seed");
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failures_propagate() {
        check(8, |g| {
            let x = g.usize(0..100);
            assert!(x < 1_000, "impossible");
            if g.bool(1.0) {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn weighted_respects_weights() {
        let mut counts = [0u32; 3];
        check(512, |g| {
            counts[g.weighted(&[8, 1, 1])] += 1;
        });
        assert!(counts[0] > counts[1] + counts[2]);
    }

    #[test]
    fn string_respects_alphabet() {
        check(64, |g| {
            let s = g.string_of("abc", 0..16);
            assert!(s.chars().all(|c| "abc".contains(c)));
            assert!(s.len() < 16);
        });
    }

    #[test]
    fn vec_respects_length_range() {
        check(64, |g| {
            let v = g.vec(3..9, |g| g.u32(0..10));
            assert!((3..9).contains(&v.len()));
        });
    }
}
