//! Steady-state memory-discipline regressions: repeated runs over one
//! process-wide cached space must not re-grow the engine's reusable
//! scratch. The microbench's counting-allocator gate enforces the
//! zero-allocation contract wholesale; these tests pin the one piece
//! with observable bookkeeping — the lazily materialized attempt
//! table — at the API level, where a regression names the culprit.

use langcrawl_core::classifier::OracleClassifier;
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::SimpleStrategy;
use langcrawl_webgraph::{FaultConfig, GeneratorConfig};

#[test]
fn second_run_on_a_cached_space_performs_zero_attempt_table_allocs() {
    // Same shared-space path every Experiment takes (`build_shared`
    // goes through the process-wide SpaceCache).
    let ws = GeneratorConfig::thai_like().scaled(8_000).build_shared(11);
    let oracle = OracleClassifier::target(ws.target_language());
    let mut sim = Simulator::new(
        &ws,
        SimConfig::default().with_faults(FaultConfig::with_rate(0.2)),
    );

    let first = sim.run(&mut SimpleStrategy::soft(), &oracle);
    assert!(first.retries > 0, "faults must actually schedule retries");
    assert_eq!(
        sim.attempt_table_allocs(),
        1,
        "first faulted run materializes the attempt table exactly once"
    );

    let second = sim.run(&mut SimpleStrategy::soft(), &oracle);
    assert_eq!(
        sim.attempt_table_allocs(),
        1,
        "second run must reuse the grown table, not reallocate it"
    );
    assert_eq!(
        second.retries, first.retries,
        "reuse must not change the schedule"
    );
}

#[test]
fn zero_fault_runs_never_materialize_the_attempt_table() {
    let ws = GeneratorConfig::thai_like().scaled(8_000).build_shared(11);
    let oracle = OracleClassifier::target(ws.target_language());
    let mut sim = Simulator::new(&ws, SimConfig::default());
    for _ in 0..3 {
        sim.run(&mut SimpleStrategy::soft(), &oracle);
        assert_eq!(sim.attempt_table_allocs(), 0);
    }
}
