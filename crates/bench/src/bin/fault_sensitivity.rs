//! Fault-sensitivity sweep — the seeded fault model (flaky/slow/dead
//! hosts, transient 503s and timeouts) layered over one shared space at
//! increasing failure rates, crawled by the paper's strategy families
//! under the default capped-exponential retry policy. Reports harvest
//! net of failures: relevant pages delivered per fetch *attempt*.

fn main() {
    langcrawl_bench::harnesses::fault_sensitivity::run();
}
