//! Ablation A — is *language locality* really what makes focused
//! crawling work?
//!
//! The paper's §3 argues focused crawling transfers to language-specific
//! crawling **because** the Web exhibits language locality. This ablation
//! sweeps the generator's locality knob (probability that an inter-host
//! link stays within its language) and measures the focused crawler's
//! early-harvest advantage over breadth-first. Expectation: the advantage
//! shrinks toward zero as locality decays toward the unbiased level.

fn main() {
    langcrawl_bench::harnesses::ablation_locality::run();
}
