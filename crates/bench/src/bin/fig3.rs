//! Figure 3 — simple strategy on the Thai dataset.
//!
//! Reproduces both panels: (a) harvest rate and (b) coverage versus
//! pages crawled, for breadth-first, hard-focused and soft-focused
//! crawling. Page language is judged from the META charset label, as the
//! paper did for Thai (§3.2).
//!
//! Expected shapes (paper §5.2.1): both focused modes sustain roughly
//! 60% harvest over the early crawl versus the breadth-first baseline at
//! the dataset mean; soft-focused reaches 100% coverage by the end of
//! the crawl; hard-focused stops early at ~70% coverage.

use langcrawl_bench::runner::{self, print_table, StrategyFactory};
use langcrawl_bench::gnuplot::{write_script, PlotKind};
use langcrawl_bench::AsciiChart;
use langcrawl_core::classifier::MetaClassifier;
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{BreadthFirst, SimpleStrategy, Strategy};
use langcrawl_webgraph::{GeneratorConfig, WebSpace};

fn main() {
    let scale = runner::env_scale(200_000);
    let seed = runner::env_seed();
    println!("== Figure 3: Simple Strategy, Thai dataset (n={scale}, seed={seed}) ==");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(seed);
    let classifier = MetaClassifier::target(ws.target_language());

    let factories: Vec<(&str, StrategyFactory)> = vec![
        ("breadth-first", Box::new(|_: &WebSpace| {
            Box::new(BreadthFirst::new()) as Box<dyn Strategy>
        })),
        ("hard-focused", Box::new(|_: &WebSpace| {
            Box::new(SimpleStrategy::hard()) as Box<dyn Strategy>
        })),
        ("soft-focused", Box::new(|_: &WebSpace| {
            Box::new(SimpleStrategy::soft()) as Box<dyn Strategy>
        })),
    ];
    let reports = runner::run_parallel(&ws, &factories, &classifier, &SimConfig::default().with_url_filter());

    // Panel (a): harvest rate.
    let mut chart_a = AsciiChart::new(
        "Fig 3(a)  Harvest Rate [%] vs pages crawled",
        "harvest%",
    )
    .y_max(100.0);
    for r in &reports {
        chart_a.series(
            &r.strategy,
            r.samples
                .iter()
                .map(|s| (s.crawled as f64, 100.0 * s.harvest_rate()))
                .collect(),
        );
    }
    chart_a.print();
    print_table("Fig 3(a) harvest rate [%]", &reports, 16, |r, j| {
        Some(100.0 * r.samples[j].harvest_rate())
    });

    // Panel (b): coverage.
    let mut chart_b = AsciiChart::new(
        "Fig 3(b)  Coverage [%] vs pages crawled",
        "cover%",
    )
    .y_max(100.0);
    for r in &reports {
        chart_b.series(
            &r.strategy,
            r.samples
                .iter()
                .map(|s| (s.crawled as f64, 100.0 * r.coverage_at(s)))
                .collect(),
        );
    }
    chart_b.print();
    print_table("Fig 3(b) coverage [%]", &reports, 16, |r, j| {
        Some(100.0 * r.coverage_at(&r.samples[j]))
    });

    println!();
    for r in &reports {
        println!("{}", r.summary_row());
        runner::write_csv(r, &format!("fig3_{}", r.strategy.replace(' ', "_")));
    }
    write_script("Fig 3(a) Harvest Rate, Thai", PlotKind::Harvest, &reports, "fig3");
    write_script("Fig 3(b) Coverage, Thai", PlotKind::Coverage, &reports, "fig3");

    // The paper's headline claims, as checks the harness itself reports:
    let bf = &reports[0];
    let hard = &reports[1];
    let soft = &reports[2];
    let early = ws.num_pages() as u64 / 7; // "the first part of the crawl"
    println!("\nShape checks (paper §5.2.1):");
    println!(
        "  focused beat breadth-first early:   hard {:.1}% / soft {:.1}% vs bf {:.1}%  [{}]",
        100.0 * hard.harvest_at(early),
        100.0 * soft.harvest_at(early),
        100.0 * bf.harvest_at(early),
        ok(hard.harvest_at(early) > bf.harvest_at(early)
            && soft.harvest_at(early) > bf.harvest_at(early))
    );
    println!(
        "  soft reaches ~100% coverage:        {:.1}%  [{}]",
        100.0 * soft.final_coverage(),
        ok(soft.final_coverage() > 0.99)
    );
    println!(
        "  hard truncates at the ceiling:      {:.1}%  [{}]",
        100.0 * hard.final_coverage(),
        ok(hard.final_coverage() < 0.9 && hard.final_coverage() > 0.4)
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "OK"
    } else {
        "MISMATCH"
    }
}
