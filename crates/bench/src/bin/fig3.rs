//! Figure 3 — simple strategy on the Thai dataset.
//!
//! Reproduces both panels: (a) harvest rate and (b) coverage versus
//! pages crawled, for breadth-first, hard-focused and soft-focused
//! crawling. Page language is judged from the META charset label, as the
//! paper did for Thai (§3.2).
//!
//! Expected shapes (paper §5.2.1): both focused modes sustain roughly
//! 60% harvest over the early crawl versus the breadth-first baseline at
//! the dataset mean; soft-focused reaches 100% coverage by the end of
//! the crawl; hard-focused stops early at ~70% coverage.

fn main() {
    langcrawl_bench::harnesses::fig3::run();
}
