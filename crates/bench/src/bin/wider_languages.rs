//! The §6 extension: "conduct more simulations … with a wider range of
//! crawling strategies" — and languages. The paper's pipeline is
//! language-agnostic by construction; this harness proves it by running
//! the full §3 stack for **four** target languages, each classified
//! through its own charset family (Table 1 rows plus the EUC-KR/GB2312
//! rows this reproduction adds).

fn main() {
    langcrawl_bench::harnesses::wider_languages::run();
}
