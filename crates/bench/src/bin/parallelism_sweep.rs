//! Parallelism sweep — the virtual-time scheduler at K ∈ {1, 4, 16}
//! fetch slots over the host-sharded frontier, with and without
//! per-host politeness gaps. Reports makespan, speedup, slot-idle
//! stalls, politeness waits, cross-shard handoff traffic and shard load
//! imbalance; the crawl itself (pages, harvest) is invariant.

fn main() {
    langcrawl_bench::harnesses::parallelism_sweep::run();
}
