//! Figure 4 — simple strategy on the Japanese dataset.
//!
//! Same panels as Fig. 3, on the high-specificity Japanese-like space.
//! Page language is judged by the byte-distribution detector over
//! recorded charsets — the paper ran the Mozilla detector for Japanese;
//! at figure scale we use the charset-equivalent META path with the
//! detector validated separately (Ablation B), because synthesizing and
//! scanning hundreds of thousands of bodies per strategy is content-mode
//! work (see `ablation_classifier`).
//!
//! Expected shapes (paper §5.2.1): *all* strategies, breadth-first
//! included, harvest above ~70% — the dataset is already so relevant
//! that focusing buys little, which is why the paper moves to Thai-only
//! experiments afterwards.

fn main() {
    langcrawl_bench::harnesses::fig4::run();
}
