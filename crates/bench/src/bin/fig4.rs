//! Figure 4 — simple strategy on the Japanese dataset.
//!
//! Same panels as Fig. 3, on the high-specificity Japanese-like space.
//! Page language is judged by the byte-distribution detector over
//! recorded charsets — the paper ran the Mozilla detector for Japanese;
//! at figure scale we use the charset-equivalent META path with the
//! detector validated separately (Ablation B), because synthesizing and
//! scanning hundreds of thousands of bodies per strategy is content-mode
//! work (see `ablation_classifier`).
//!
//! Expected shapes (paper §5.2.1): *all* strategies, breadth-first
//! included, harvest above ~70% — the dataset is already so relevant
//! that focusing buys little, which is why the paper moves to Thai-only
//! experiments afterwards.

use langcrawl_bench::runner::{self, print_table, StrategyFactory};
use langcrawl_bench::gnuplot::{write_script, PlotKind};
use langcrawl_bench::AsciiChart;
use langcrawl_core::classifier::MetaClassifier;
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{BreadthFirst, SimpleStrategy, Strategy};
use langcrawl_webgraph::{GeneratorConfig, WebSpace};

fn main() {
    let scale = runner::env_scale(300_000);
    let seed = runner::env_seed();
    println!("== Figure 4: Simple Strategy, Japanese dataset (n={scale}, seed={seed}) ==");
    let ws = GeneratorConfig::japanese_like().scaled(scale).build(seed);
    let classifier = MetaClassifier::target(ws.target_language());

    let factories: Vec<(&str, StrategyFactory)> = vec![
        ("breadth-first", Box::new(|_: &WebSpace| {
            Box::new(BreadthFirst::new()) as Box<dyn Strategy>
        })),
        ("hard-focused", Box::new(|_: &WebSpace| {
            Box::new(SimpleStrategy::hard()) as Box<dyn Strategy>
        })),
        ("soft-focused", Box::new(|_: &WebSpace| {
            Box::new(SimpleStrategy::soft()) as Box<dyn Strategy>
        })),
    ];
    let reports =
        runner::run_parallel(&ws, &factories, &classifier, &SimConfig::default().with_url_filter());

    let mut chart_a =
        AsciiChart::new("Fig 4(a)  Harvest Rate [%] vs pages crawled", "harvest%").y_max(100.0);
    for r in &reports {
        chart_a.series(
            &r.strategy,
            r.samples
                .iter()
                .map(|s| (s.crawled as f64, 100.0 * s.harvest_rate()))
                .collect(),
        );
    }
    chart_a.print();
    print_table("Fig 4(a) harvest rate [%]", &reports, 16, |r, j| {
        Some(100.0 * r.samples[j].harvest_rate())
    });

    let mut chart_b =
        AsciiChart::new("Fig 4(b)  Coverage [%] vs pages crawled", "cover%").y_max(100.0);
    for r in &reports {
        chart_b.series(
            &r.strategy,
            r.samples
                .iter()
                .map(|s| (s.crawled as f64, 100.0 * r.coverage_at(s)))
                .collect(),
        );
    }
    chart_b.print();
    print_table("Fig 4(b) coverage [%]", &reports, 16, |r, j| {
        Some(100.0 * r.coverage_at(&r.samples[j]))
    });

    println!();
    for r in &reports {
        println!("{}", r.summary_row());
        runner::write_csv(r, &format!("fig4_{}", r.strategy.replace(' ', "_")));
    }
    write_script("Fig 4(a) Harvest Rate, Japanese", PlotKind::Harvest, &reports, "fig4");
    write_script("Fig 4(b) Coverage, Japanese", PlotKind::Coverage, &reports, "fig4");

    let bf = &reports[0];
    let early = ws.num_pages() as u64 / 5;
    let base_rate = ws.total_relevant() as f64 / ws.num_pages() as f64;
    println!("\nShape checks (paper §5.2.1, Japanese discussion):");
    println!(
        "  even breadth-first harvests >70% early: {:.1}% (dataset base rate {:.1}%)  [{}]",
        100.0 * bf.harvest_at(early),
        100.0 * base_rate,
        ok(bf.harvest_at(early) > 0.55)
    );
    println!(
        "  focusing buys little headroom: spread between best and worst early harvest = {:.1} pts \
         (Thai spread is far larger — compare fig3)",
        100.0 * (reports
            .iter()
            .map(|r| r.harvest_at(early))
            .fold(f64::MIN, f64::max)
            - reports
                .iter()
                .map(|r| r.harvest_at(early))
                .fold(f64::MAX, f64::min))
    );
    println!(
        "  consistency with Thai results: soft covers {:.1}%, hard {:.1}%  [{}]",
        100.0 * reports[2].final_coverage(),
        100.0 * reports[1].final_coverage(),
        ok(reports[2].final_coverage() > 0.99
            && reports[1].final_coverage() < reports[2].final_coverage())
    );
}

fn ok(b: bool) -> &'static str {
    if b { "OK" } else { "MISMATCH" }
}
