//! Figure 5 — URL-queue size of the simple strategy on the Thai dataset.
//!
//! The paper's motivation for the limited-distance strategy: soft-focused
//! crawling keeps every discovered URL queued, peaking at ~8 M of 14 M
//! URLs (~57%), while hard-focused stays near 1 M (~7%) — soft "would end
//! up with the exhaustion of physical space for the URL queue" at real
//! web scale. Expected shape here: soft's pending-URL curve several-fold
//! above hard's, with hard's crawl ending early.

fn main() {
    langcrawl_bench::harnesses::fig5::run();
}
