//! Figure 5 — URL-queue size of the simple strategy on the Thai dataset.
//!
//! The paper's motivation for the limited-distance strategy: soft-focused
//! crawling keeps every discovered URL queued, peaking at ~8 M of 14 M
//! URLs (~57%), while hard-focused stays near 1 M (~7%) — soft "would end
//! up with the exhaustion of physical space for the URL queue" at real
//! web scale. Expected shape here: soft's pending-URL curve several-fold
//! above hard's, with hard's crawl ending early.

use langcrawl_bench::runner::{self, print_table, StrategyFactory};
use langcrawl_bench::gnuplot::{write_script, PlotKind};
use langcrawl_bench::AsciiChart;
use langcrawl_core::classifier::MetaClassifier;
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{SimpleStrategy, Strategy};
use langcrawl_webgraph::{GeneratorConfig, WebSpace};

fn main() {
    let scale = runner::env_scale(200_000);
    let seed = runner::env_seed();
    println!("== Figure 5: URL queue size, Simple Strategy, Thai dataset (n={scale}, seed={seed}) ==");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(seed);
    let classifier = MetaClassifier::target(ws.target_language());

    let factories: Vec<(&str, StrategyFactory)> = vec![
        ("soft-focused", Box::new(|_: &WebSpace| {
            Box::new(SimpleStrategy::soft()) as Box<dyn Strategy>
        })),
        ("hard-focused", Box::new(|_: &WebSpace| {
            Box::new(SimpleStrategy::hard()) as Box<dyn Strategy>
        })),
    ];
    let reports = runner::run_parallel(&ws, &factories, &classifier, &SimConfig::default());

    let mut chart = AsciiChart::new("Fig 5  URL queue size [URLs] vs pages crawled", "queue");
    for r in &reports {
        chart.series(
            &r.strategy,
            r.samples
                .iter()
                .map(|s| (s.crawled as f64, s.queue_size as f64))
                .collect(),
        );
    }
    chart.print();
    print_table("Fig 5 URL queue size [URLs]", &reports, 16, |r, j| {
        Some(r.samples[j].queue_size as f64)
    });

    println!();
    for r in &reports {
        println!("{}", r.summary_row());
        runner::write_csv(r, &format!("fig5_{}", r.strategy.replace(' ', "_")));
    }
    write_script("Fig 5 URL Queue Size, Thai", PlotKind::QueueSize, &reports, "fig5");

    let soft = &reports[0];
    let hard = &reports[1];
    let n = ws.num_pages() as f64;
    println!("\nShape checks (paper §5.2.1, Fig. 5):");
    println!(
        "  soft peak: {} URLs = {:.1}% of space (paper: ~57%)",
        soft.max_queue,
        100.0 * soft.max_queue as f64 / n
    );
    println!(
        "  hard peak: {} URLs = {:.1}% of space (paper: ~7%)",
        hard.max_queue,
        100.0 * hard.max_queue as f64 / n
    );
    println!(
        "  soft dwarfs hard by {:.1}x (paper: ~8x)  [{}]",
        soft.max_queue as f64 / hard.max_queue as f64,
        ok(soft.max_queue > 3 * hard.max_queue)
    );

    // The paper's §5.2.1 warning, quantified: "Scaling up this to the
    // case of the real Web, we would end up with the exhaustion of
    // physical space for the URL queue." A frontier entry costs roughly
    // one URL string (~64 bytes) plus index overhead (~48 bytes).
    const BYTES_PER_ENTRY: f64 = 112.0;
    let soft_frac = soft.max_queue as f64 / n;
    let hard_frac = hard.max_queue as f64 / n;
    for (label, urls) in [("the paper's Thai log", 14.0e6), ("a full national web", 1.0e9)] {
        println!(
            "  projected peak frontier at {label} ({:.0}M URLs): soft ≈ {:.1} GB, hard ≈ {:.1} GB",
            urls / 1.0e6,
            soft_frac * urls * BYTES_PER_ENTRY / 1.0e9,
            hard_frac * urls * BYTES_PER_ENTRY / 1.0e9
        );
    }
    println!(
        "  (2004-era crawl machines had 2–8 GB of RAM: the soft-focused queue \
         does not fit, the hard/limited queues do — the paper's motivation for §3.3.2)"
    );
}

fn ok(b: bool) -> &'static str {
    if b { "OK" } else { "MISMATCH" }
}
