//! One-shot reproduction check: run every table/figure/ablation harness
//! at reduced scale and report a single pass/fail dashboard — the
//! "does this repository still reproduce the paper?" button.
//!
//! Runs in-process (no subprocess per figure): all harnesses share one
//! [`langcrawl_webgraph::SpaceCache`], so each `(preset, scale, seed)`
//! web space is generated exactly once for the whole dashboard.
//!
//! ```sh
//! cargo run --release -p langcrawl-bench --bin repro_all
//! LANGCRAWL_SCALE=120000 cargo run --release -p langcrawl-bench --bin repro_all
//! ```

use langcrawl_bench::figures;
use langcrawl_bench::harnesses;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

fn main() {
    let scale = std::env::var("LANGCRAWL_SCALE").unwrap_or_else(|_| "40000".into());
    // Harnesses read LANGCRAWL_SCALE themselves; pin the default so a
    // bare `repro_all` matches the historical 40k dashboard scale.
    if std::env::var("LANGCRAWL_SCALE").is_err() {
        std::env::set_var("LANGCRAWL_SCALE", &scale);
    }

    println!("== langcrawl reproduction check (LANGCRAWL_SCALE={scale}) ==\n");
    let mut rows = Vec::new();
    let mut failures = 0usize;
    let started = Instant::now();
    for &(name, run) in harnesses::ALL {
        println!("--- {name} ---");
        figures::reset_counts();
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(run));
        let secs = t0.elapsed().as_secs_f64();
        let (checks, mismatches) = figures::take_counts();
        let status = match outcome {
            Ok(()) if mismatches == 0 => "pass",
            Ok(()) => "FAIL",
            Err(_) => "CRASH",
        };
        if status != "pass" {
            failures += 1;
        }
        println!();
        rows.push((name, status, checks - mismatches, mismatches, secs));
    }
    println!("== dashboard ==");
    for (name, status, oks, mismatches, secs) in &rows {
        println!(
            "  {name:<22} {status:<8} {oks:>2} checks ok, {mismatches} mismatched   ({secs:.1}s)"
        );
    }
    println!(
        "\n{} of {} harnesses clean in {:.0}s (web spaces cached: {})",
        rows.len() - failures,
        rows.len(),
        started.elapsed().as_secs_f64(),
        langcrawl_webgraph::SpaceCache::global().len(),
    );
    if failures > 0 {
        std::process::exit(1);
    }
    println!("the reproduction holds.");
}
