//! One-shot reproduction check: run every table/figure/ablation harness
//! at reduced scale and report a single pass/fail dashboard — the
//! "does this repository still reproduce the paper?" button.
//!
//! ```sh
//! cargo run --release -p langcrawl-bench --bin repro_all
//! LANGCRAWL_SCALE=120000 cargo run --release -p langcrawl-bench --bin repro_all
//! ```

use std::process::Command;
use std::time::Instant;

const HARNESSES: &[&str] = &[
    "table1",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "graph_stats",
    "ablation_locality",
    "ablation_classifier",
    "ablation_seeds",
    "ablation_ordering",
    "ablation_tld",
    "dataset_collection",
    "timing_ext",
    "extensions",
    "wider_languages",
];

fn main() {
    let scale = std::env::var("LANGCRAWL_SCALE").unwrap_or_else(|_| "40000".into());
    let bin_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a directory")
        .to_path_buf();

    println!("== langcrawl reproduction check (LANGCRAWL_SCALE={scale}) ==\n");
    let mut failures = 0usize;
    let started = Instant::now();
    for name in HARNESSES {
        let bin = bin_dir.join(name);
        let t0 = Instant::now();
        let out = Command::new(&bin).env("LANGCRAWL_SCALE", &scale).output();
        let (status, mismatches, oks) = match out {
            Ok(out) if out.status.success() => {
                let text = String::from_utf8_lossy(&out.stdout);
                let mm = text.matches("MISMATCH").count();
                let okc = text.matches("[OK]").count();
                (if mm == 0 { "pass" } else { "FAIL" }, mm, okc)
            }
            Ok(out) => {
                eprintln!(
                    "--- {name} stderr ---\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
                ("CRASH", 0, 0)
            }
            Err(e) => {
                eprintln!("cannot run {}: {e} (build with `cargo build --release -p langcrawl-bench` first)", bin.display());
                ("MISSING", 0, 0)
            }
        };
        if status != "pass" {
            failures += 1;
        }
        println!(
            "  {name:<22} {status:<8} {oks:>2} checks ok, {mismatches} mismatched   ({:.1}s)",
            t0.elapsed().as_secs_f64()
        );
    }
    println!(
        "\n{} of {} harnesses clean in {:.0}s",
        HARNESSES.len() - failures,
        HARNESSES.len(),
        started.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
    println!("the reproduction holds.");
}
