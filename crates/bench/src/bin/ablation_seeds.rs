//! Ablation C — seed-set size sensitivity.
//!
//! Archiving crawls seed from a handful of national portals; the paper
//! does not report seed sensitivity, but coverage ceilings and early
//! harvest both depend on where the crawl starts. This ablation
//! regenerates the Thai-like space with 1, 2, 4, 8, 16 and 32 seed
//! hosts and re-runs hard- and soft-focused crawls.
//!
//! Expectation: soft-focused coverage is seed-insensitive (everything is
//! reachable); hard-focused coverage and early harvest improve modestly
//! with more seeds (more entry points into the relevant mainland), then
//! saturate.

fn main() {
    langcrawl_bench::harnesses::ablation_seeds::run();
}
