//! Table 3 — characteristics of the experimental datasets, regenerated
//! for the synthetic Thai-like and Japanese-like web spaces, plus the
//! structural reachability analysis behind the coverage curves.

fn main() {
    langcrawl_bench::harnesses::table3::run();
}
