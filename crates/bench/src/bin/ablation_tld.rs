//! Ablation F — national-domain scoping vs language-specific crawling.
//!
//! Before language-specific crawling, national web archives scoped their
//! crawls by ccTLD (everything under `.th`, nothing else). The paper's
//! implicit claim is that *language*, not *domain*, is the right
//! archiving criterion. This harness puts the two policies on the same
//! Thai-like space:
//!
//! * the TLD crawl needs no classifier and wastes nothing on foreign
//!   hosts — its harvest should be the highest of all;
//! * but it can neither reach Thai content hosted abroad (the `leak`
//!   pages) nor pass through foreign gateway chains (the islands), so
//!   its *coverage ceiling is structural* and no parameter can raise it;
//! * language-focused crawling with tunneling (the paper's conclusion)
//!   beats that ceiling at a modest harvest cost.

fn main() {
    langcrawl_bench::harnesses::ablation_tld::run();
}
