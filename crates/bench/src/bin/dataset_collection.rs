//! Dataset-collection experiment — why the paper's Japanese dataset was
//! 71% relevant.
//!
//! §5.1 notes the Japanese log was itself acquired with "a combination
//! of hard focused with limited distance strategies", and §5.2.1
//! concludes the dataset "is already kept sufficiently relevant" — its
//! high specificity is an artifact of how it was *collected*, which is
//! exactly why the paper's later experiments use the Thai dataset.
//!
//! This harness makes that argument quantitative. It builds a "world"
//! web space whose true relevance ratio is low (a Thai-like 35%), then
//! collects datasets from it with the paper's two collection crawls
//! (hard+limited for Japanese, soft+limited for Thai) and with plain
//! breadth-first, and measures the **relevance ratio of each collected
//! snapshot**. Expected: the hard+limited snapshot is far more relevant
//! than the world (the Japanese situation); the soft+limited snapshot
//! stays close to the world's ratio (the Thai situation).

fn main() {
    langcrawl_bench::harnesses::dataset_collection::run();
}
