//! Structural characterisation of the generated web spaces — the
//! measured counterpart of every generator knob, printed the way a crawl
//! study would characterise a real dataset.

fn main() {
    langcrawl_bench::harnesses::graph_stats::run();
}
