//! Ablation E — importance-ordered crawling (Cho et al., the paper's
//! reference \[3\]) vs language-focused crawling.
//!
//! §2 of the paper motivates focused crawling against general-purpose
//! strategies; reference \[3\] is the strongest of those: order the
//! frontier by backlink count or online PageRank. Both chase popularity,
//! not language, so on an archiving mission they should sit between
//! breadth-first and the focused strategies — popular pages are
//! disproportionately on large (often relevant) hosts, but nothing stops
//! the crawl from pouring effort into popular *foreign* hubs.

fn main() {
    langcrawl_bench::harnesses::ablation_ordering::run();
}
