//! Ablation E — importance-ordered crawling (Cho et al., the paper's
//! reference \[3\]) vs language-focused crawling.
//!
//! §2 of the paper motivates focused crawling against general-purpose
//! strategies; reference \[3\] is the strongest of those: order the
//! frontier by backlink count or online PageRank. Both chase popularity,
//! not language, so on an archiving mission they should sit between
//! breadth-first and the focused strategies — popular pages are
//! disproportionately on large (often relevant) hosts, but nothing stops
//! the crawl from pouring effort into popular *foreign* hubs.

use langcrawl_bench::figures::ok;
use langcrawl_bench::runner::{self, StrategyFactory};
use langcrawl_core::classifier::MetaClassifier;
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{
    BacklinkCount, BreadthFirst, OnlinePageRank, SimpleStrategy, Strategy,
};
use langcrawl_webgraph::{GeneratorConfig, WebSpace};

fn main() {
    let scale = runner::env_scale(80_000);
    let seed = runner::env_seed();
    println!("== Ablation E: URL-ordering baselines vs focused crawling, Thai (n={scale}, seed={seed}) ==\n");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(seed);
    let classifier = MetaClassifier::target(ws.target_language());

    let factories: Vec<(&str, StrategyFactory)> = vec![
        ("breadth-first", Box::new(|_: &WebSpace| {
            Box::new(BreadthFirst::new()) as Box<dyn Strategy>
        })),
        ("backlink-ordered", Box::new(|_: &WebSpace| {
            Box::new(BacklinkCount::new()) as Box<dyn Strategy>
        })),
        ("pagerank-ordered", Box::new(|_: &WebSpace| {
            Box::new(OnlinePageRank::new()) as Box<dyn Strategy>
        })),
        ("soft-focused", Box::new(|_: &WebSpace| {
            Box::new(SimpleStrategy::soft()) as Box<dyn Strategy>
        })),
    ];
    let reports = runner::run_parallel(
        &ws,
        &factories,
        &classifier,
        &SimConfig::default().with_url_filter(),
    );

    let early = ws.num_pages() as u64 / 6;
    println!(
        "{:<26} {:>12} {:>10} {:>10} {:>12}",
        "strategy", "harvest@1/6", "harvest", "coverage", "max queue"
    );
    for r in &reports {
        println!(
            "{:<26} {:>11.1}% {:>9.1}% {:>9.1}% {:>12}",
            r.strategy,
            100.0 * r.harvest_at(early),
            100.0 * r.final_harvest(),
            100.0 * r.final_coverage(),
            r.max_queue
        );
        runner::write_csv(r, &format!("ordering_{}", r.strategy.replace([' ', '(', ')'], "_")));
    }

    let bf = reports[0].harvest_at(early);
    let soft = reports[3].harvest_at(early);
    let best_ordered = reports[1].harvest_at(early).max(reports[2].harvest_at(early));
    println!("\nShape checks (paper §2's motivation, quantified):");
    println!(
        "  language focus beats importance ordering: soft {:.1}% vs best-ordered {:.1}%  [{}]",
        100.0 * soft,
        100.0 * best_ordered,
        ok(soft > best_ordered)
    );
    println!(
        "  importance ordering is not *worse* than blind BFS for archiving: \
         best-ordered {:.1}% vs bf {:.1}%",
        100.0 * best_ordered,
        100.0 * bf
    );
    println!(
        "  all language-blind strategies still cover everything eventually: {:?}  [{}]",
        reports[..3]
            .iter()
            .map(|r| format!("{:.2}", r.final_coverage()))
            .collect::<Vec<_>>(),
        ok(reports[..3].iter().all(|r| r.final_coverage() > 0.99))
    );
}
