//! Extension 2 — the related-work strategies the paper describes but
//! does not evaluate: the HITS distiller (§2.1) and the context-graph
//! crawler (§2.2), side by side with the paper's own strategies.
//!
//! The context-graph crawler here is *idealized* (perfect layer
//! classifier computed from the LinkDB), so it upper-bounds what
//! Diligenti et al.'s approach could achieve on this space; the
//! limited-distance strategy competing within a few points of it — with
//! no reverse-link requirement — is the paper's §2.2 argument made
//! quantitative.

fn main() {
    langcrawl_bench::harnesses::extensions::run();
}
