//! Figure 6 — non-prioritized limited-distance strategy, Thai dataset,
//! N = 1..4: (a) URL queue size, (b) harvest rate, (c) coverage.
//!
//! Expected shapes (paper §5.2.2): queue size grows with N; coverage
//! grows with N toward soft-focused's 100%; harvest rate *falls* as N
//! grows — the flaw the prioritized mode (Fig. 7) fixes.

fn main() {
    langcrawl_bench::harnesses::fig6::run();
}
