//! Figure 6 — non-prioritized limited-distance strategy, Thai dataset,
//! N = 1..4: (a) URL queue size, (b) harvest rate, (c) coverage.
//!
//! Expected shapes (paper §5.2.2): queue size grows with N; coverage
//! grows with N toward soft-focused's 100%; harvest rate *falls* as N
//! grows — the flaw the prioritized mode (Fig. 7) fixes.

use langcrawl_bench::figures::{ok, panels};
use langcrawl_bench::runner::{self, StrategyFactory};
use langcrawl_core::classifier::MetaClassifier;
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{LimitedDistanceStrategy, Strategy};
use langcrawl_webgraph::{GeneratorConfig, WebSpace};

fn main() {
    let scale = runner::env_scale(200_000);
    let seed = runner::env_seed();
    println!(
        "== Figure 6: Non-Prioritized Limited Distance, Thai dataset (n={scale}, seed={seed}) =="
    );
    let ws = GeneratorConfig::thai_like().scaled(scale).build(seed);
    let classifier = MetaClassifier::target(ws.target_language());

    let factories: Vec<(&str, StrategyFactory)> = (1..=4u8)
        .map(|n| {
            (
                "limited",
                Box::new(move |_: &WebSpace| {
                    Box::new(LimitedDistanceStrategy::non_prioritized(n)) as Box<dyn Strategy>
                }) as StrategyFactory,
            )
        })
        .collect();
    let reports = runner::run_parallel(&ws, &factories, &classifier, &SimConfig::default());

    panels(&reports, "Fig 6", "fig6");

    println!("\nShape checks (paper §5.2.2, non-prioritized):");
    let queues: Vec<usize> = reports.iter().map(|r| r.max_queue).collect();
    let covers: Vec<f64> = reports.iter().map(|r| r.final_coverage()).collect();
    let early = ws.num_pages() as u64 / 6;
    let harvests: Vec<f64> = reports.iter().map(|r| r.harvest_at(early)).collect();
    println!(
        "  queue size grows with N:    {queues:?}  [{}]",
        ok(queues.windows(2).all(|w| w[0] < w[1]))
    );
    println!(
        "  coverage grows with N:      {:?}  [{}]",
        covers.iter().map(|c| format!("{c:.3}")).collect::<Vec<_>>(),
        ok(covers.windows(2).all(|w| w[0] <= w[1] + 1e-9))
    );
    println!(
        "  early harvest FALLS with N: {:?}  [{}]",
        harvests.iter().map(|h| format!("{h:.3}")).collect::<Vec<_>>(),
        ok(harvests.first() > harvests.last())
    );
}
