//! Figure 7 — prioritized limited-distance strategy, Thai dataset,
//! N = 1..4: (a) URL queue size, (b) harvest rate, (c) coverage.
//!
//! Expected shapes (paper §5.2.2): queue size still controlled by N, but
//! — unlike the non-prioritized mode of Fig. 6 — harvest rate and
//! coverage stay essentially flat across N: crawling near-relevant URLs
//! first means the tunnel budget no longer costs precision. This is the
//! configuration the paper's conclusion recommends.

use langcrawl_bench::figures::{ok, panels};
use langcrawl_bench::runner::{self, StrategyFactory};
use langcrawl_core::classifier::MetaClassifier;
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{LimitedDistanceStrategy, Strategy};
use langcrawl_webgraph::{GeneratorConfig, WebSpace};

fn main() {
    let scale = runner::env_scale(200_000);
    let seed = runner::env_seed();
    println!(
        "== Figure 7: Prioritized Limited Distance, Thai dataset (n={scale}, seed={seed}) =="
    );
    let ws = GeneratorConfig::thai_like().scaled(scale).build(seed);
    let classifier = MetaClassifier::target(ws.target_language());

    let factories: Vec<(&str, StrategyFactory)> = (1..=4u8)
        .map(|n| {
            (
                "prior-limited",
                Box::new(move |_: &WebSpace| {
                    Box::new(LimitedDistanceStrategy::prioritized(n)) as Box<dyn Strategy>
                }) as StrategyFactory,
            )
        })
        .collect();
    let reports = runner::run_parallel(&ws, &factories, &classifier, &SimConfig::default());

    panels(&reports, "Fig 7", "fig7");

    println!("\nShape checks (paper §5.2.2, prioritized):");
    let queues: Vec<usize> = reports.iter().map(|r| r.max_queue).collect();
    let covers: Vec<f64> = reports.iter().map(|r| r.final_coverage()).collect();
    let early = ws.num_pages() as u64 / 6;
    let harvests: Vec<f64> = reports.iter().map(|r| r.harvest_at(early)).collect();
    println!(
        "  queue size still bounded by N: {queues:?}  [{}]",
        ok(queues.windows(2).all(|w| w[0] <= w[1]))
    );
    let hspread = harvests.iter().fold(f64::MIN, |a, &b| a.max(b))
        - harvests.iter().fold(f64::MAX, |a, &b| a.min(b));
    println!(
        "  harvest ~invariant in N (spread {:.1} pts): {:?}  [{}]",
        100.0 * hspread,
        harvests.iter().map(|h| format!("{h:.3}")).collect::<Vec<_>>(),
        ok(hspread < 0.08)
    );
    let cspread = covers.iter().fold(f64::MIN, |a, &b| a.max(b))
        - covers.iter().fold(f64::MAX, |a, &b| a.min(b));
    println!(
        "  coverage grows modestly then saturates (spread {:.1} pts): {:?}",
        100.0 * cspread,
        covers.iter().map(|c| format!("{c:.3}")).collect::<Vec<_>>()
    );
}
