//! Figure 7 — prioritized limited-distance strategy, Thai dataset,
//! N = 1..4: (a) URL queue size, (b) harvest rate, (c) coverage.
//!
//! Expected shapes (paper §5.2.2): queue size still controlled by N, but
//! — unlike the non-prioritized mode of Fig. 6 — harvest rate and
//! coverage stay essentially flat across N: crawling near-relevant URLs
//! first means the tunnel budget no longer costs precision. This is the
//! configuration the paper's conclusion recommends.

fn main() {
    langcrawl_bench::harnesses::fig7::run();
}
