//! Ablation B — classifier choice: META label vs byte detector vs oracle.
//!
//! §3.2 of the paper offers two relevance-judgment methods and notes
//! (§3, observation 3) that pages are sometimes mislabeled. This
//! ablation runs the same hard-focused crawl under all three classifiers
//! on a content-mode-sized space. The detector path synthesizes real
//! page bytes and runs the composite detector — the full Mozilla-style
//! pipeline the paper used for Japanese.
//!
//! Expectation: oracle ≥ detector ≥ META on coverage (hard mode punishes
//! false negatives by cutting off expansion), with META's deficit
//! tracking the mislabel + missing-META + UTF-8 rates.

fn main() {
    langcrawl_bench::harnesses::ablation_classifier::run();
}
