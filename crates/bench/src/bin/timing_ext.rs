//! Extension 1 — the paper's future work: transfer delays and
//! per-server access intervals.
//!
//! §6 plans to "enhance our crawling simulator by incorporating transfer
//! delays and access intervals". This harness runs the event-driven
//! timed simulator over the Thai space and measures:
//!
//! * wall-clock vs politeness-interval trade-off (per-server delay sweep),
//! * connection-count scaling,
//! * harvest-vs-wall-clock for the paper's strategies (the focused
//!   advantage survives the timing model).

fn main() {
    langcrawl_bench::harnesses::timing_ext::run();
}
