//! Table 1 — languages and their corresponding character encoding
//! schemes, plus the alias table the META classifier accepts and a live
//! round-trip of the detector on each encoding.

fn main() {
    langcrawl_bench::harnesses::table1::run();
}
