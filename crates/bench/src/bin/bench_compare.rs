//! `bench_compare` — the CI regression gate over committed benchmark
//! trajectories.
//!
//! Usage: `bench_compare <fresh BENCH_*.json> [<baseline BENCH_*.json>]`
//!
//! With no baseline argument — the first trajectory on a branch, where
//! nothing is committed to compare against — the gate prints an
//! explicit notice and exits 0 instead of silently doing nothing: a CI
//! log always shows whether the gate compared or had nothing to
//! compare.
//!
//! Compares the three headline throughput metrics of a freshly
//! generated `BENCH_<sha>.json` against the committed predecessor and
//! exits nonzero when any of them regresses by more than 10%. The
//! parser is a deliberately minimal string scan over the flat key
//! layout `microbench --json` emits (the workspace is dependency-free;
//! a JSON crate is not on the table), so it reads exactly the files
//! this repo produces and nothing fancier.
//!
//! The threshold is generous because these are wall-clock throughputs
//! on shared CI hosts: run-to-run medians wobble, and the gate exists
//! to catch structural regressions (an accidental de-inlining, a
//! re-introduced per-fetch allocation), not 2% scheduling noise.

use std::process::ExitCode;

/// The compared metrics — the headline throughputs the optimization
/// PRs track against their predecessor trajectories. The last two live
/// inside the `link_analysis` object; the string scan finds nested keys
/// just as well. A *baseline* trajectory may predate a metric (older
/// commits never emitted it) — that comparison is skipped with a
/// visible notice; a *fresh* file lacking any metric is an error.
const METRICS: &[&str] = &[
    "queue_ops_per_s",
    "detector_bytes_per_s",
    "simulator_pages_per_s",
    "rank_updates_per_s",
    "pagerank_pages_per_s",
];

/// Lowest acceptable fresh/baseline ratio: >10% regression fails.
const FLOOR: f64 = 0.9;

/// Extract the numeric value of a top-level `"key": <number>` pair.
fn extract(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)?;
    let rest = json[at + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Per-metric ratios: `None` = baseline predates the metric, skipped.
type Ratios = Vec<(String, Option<f64>)>;

/// Compare fresh against baseline; returns the per-metric ratios and
/// whether every compared metric clears the floor.
fn compare(fresh: &str, baseline: &str) -> Result<(Ratios, bool), String> {
    let mut ratios = Vec::new();
    let mut ok = true;
    for key in METRICS {
        let new = extract(fresh, key).ok_or_else(|| format!("fresh file lacks `{key}`"))?;
        let Some(old) = extract(baseline, key) else {
            ratios.push((key.to_string(), None));
            continue;
        };
        if old <= 0.0 {
            return Err(format!("baseline `{key}` is not positive ({old})"));
        }
        let ratio = new / old;
        ok &= ratio >= FLOOR;
        ratios.push((key.to_string(), Some(ratio)));
    }
    Ok((ratios, ok))
}

/// The explicit first-trajectory notice: printed (and exits 0) when no
/// baseline exists yet, so the skip is visible in CI logs.
fn no_baseline_notice(fresh_path: &str) -> String {
    format!(
        "bench_compare: no committed baseline trajectory to compare {fresh_path} against; \
         regression gate vacuously passes (first trajectory on this branch)"
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, fresh_path, base_path] = &args[..] else {
        if let [_, fresh_path] = &args[..] {
            println!("{}", no_baseline_notice(fresh_path));
            return ExitCode::SUCCESS;
        }
        eprintln!("usage: bench_compare <fresh BENCH_*.json> [<baseline BENCH_*.json>]");
        return ExitCode::from(2);
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
    let run = || -> Result<bool, String> {
        let fresh = read(fresh_path)?;
        let baseline = read(base_path)?;
        let (ratios, ok) = compare(&fresh, &baseline)?;
        println!("bench_compare: {fresh_path} vs {base_path} (floor {FLOOR}x)");
        for (key, ratio) in &ratios {
            match ratio {
                Some(r) => {
                    let verdict = if *r >= FLOOR { "ok" } else { "REGRESSED" };
                    println!("  {key:<24} {r:>6.2}x  [{verdict}]");
                }
                None => {
                    println!("  {key:<24}   ----   [skipped: baseline predates this metric]");
                }
            }
        }
        Ok(ok)
    };
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("bench_compare: throughput regressed more than 10% vs baseline");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_compare: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(queue: f64, det: f64, sim: f64) -> String {
        format!(
            "{{\n  \"git\": \"abc1234\",\n  \"queue_ops_per_s\": {queue:.0},\n  \
             \"batch_admit_ops_per_s\": 1,\n  \"detector_bytes_per_s\": {det:.0},\n  \
             \"generation\": {{\n    \"pages_per_s\": 99\n  }},\n  \
             \"simulator_pages_per_s\": {sim:.0},\n  \
             \"link_analysis\": {{\n    \"rank_updates_per_s\": {queue:.0},\n    \
             \"pagerank_pages_per_s\": {sim:.0}\n  }}\n}}\n"
        )
    }

    /// A pre-link-analysis trajectory: the flat metrics only.
    fn old_record(queue: f64, det: f64, sim: f64) -> String {
        format!(
            "{{\n  \"git\": \"abc1234\",\n  \"queue_ops_per_s\": {queue:.0},\n  \
             \"detector_bytes_per_s\": {det:.0},\n  \
             \"simulator_pages_per_s\": {sim:.0}\n}}\n"
        )
    }

    #[test]
    fn extracts_top_level_numbers() {
        let j = record(49131696.0, 457233243.0, 15030564.0);
        assert_eq!(extract(&j, "queue_ops_per_s"), Some(49131696.0));
        assert_eq!(extract(&j, "detector_bytes_per_s"), Some(457233243.0));
        assert_eq!(extract(&j, "simulator_pages_per_s"), Some(15030564.0));
        assert_eq!(extract(&j, "no_such_key"), None);
    }

    #[test]
    fn extracts_nested_link_analysis_numbers() {
        let j = record(100.0, 200.0, 300.0);
        assert_eq!(extract(&j, "rank_updates_per_s"), Some(100.0));
        assert_eq!(extract(&j, "pagerank_pages_per_s"), Some(300.0));
    }

    #[test]
    fn baseline_predating_a_metric_is_skipped_not_fatal() {
        // An old committed trajectory has no link_analysis object; the
        // new metrics must be skipped (with ratio None) while the shared
        // metrics still gate.
        let base = old_record(100.0, 100.0, 100.0);
        let (ratios, ok) = compare(&record(95.0, 130.0, 100.0), &base).unwrap();
        assert!(ok, "{ratios:?}");
        let skipped: Vec<&str> = ratios
            .iter()
            .filter(|(_, r)| r.is_none())
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(skipped, ["rank_updates_per_s", "pagerank_pages_per_s"]);
        // And a regression in a shared metric still fails.
        let (_, ok) = compare(&record(80.0, 100.0, 100.0), &base).unwrap();
        assert!(!ok);
    }

    #[test]
    fn link_metric_regression_fails_against_a_new_baseline() {
        let base = record(100.0, 100.0, 100.0);
        let (ratios, ok) = compare(&record(100.0, 100.0, 85.0), &base).unwrap();
        assert!(!ok);
        let pp = ratios.iter().find(|(k, _)| k == "pagerank_pages_per_s");
        assert!(pp.is_some_and(|(_, r)| r.is_some_and(|r| (r - 0.85).abs() < 1e-9)));
    }

    #[test]
    fn equal_or_faster_passes() {
        let base = record(100.0, 100.0, 100.0);
        let (ratios, ok) = compare(&record(95.0, 130.0, 100.0), &base).unwrap();
        assert!(ok, "{ratios:?}");
    }

    #[test]
    fn regression_beyond_ten_percent_fails() {
        let base = record(100.0, 100.0, 100.0);
        let (ratios, ok) = compare(&record(100.0, 100.0, 89.0), &base).unwrap();
        assert!(!ok);
        let sim = ratios.iter().find(|(k, _)| k == "simulator_pages_per_s");
        assert!(sim.is_some_and(|(_, r)| r.is_some_and(|r| (r - 0.89).abs() < 1e-9)));
    }

    #[test]
    fn exactly_ninety_percent_still_passes() {
        let base = record(100.0, 100.0, 100.0);
        let (_, ok) = compare(&record(90.0, 90.0, 90.0), &base).unwrap();
        assert!(ok, "the floor is inclusive");
    }

    #[test]
    fn no_baseline_notice_names_the_fresh_file_and_the_reason() {
        let notice = no_baseline_notice("BENCH_abc1234.json");
        assert!(notice.contains("BENCH_abc1234.json"));
        assert!(notice.contains("no committed baseline"));
        assert!(notice.contains("first trajectory"));
    }

    #[test]
    fn missing_metric_in_the_fresh_file_is_an_error() {
        let base = record(100.0, 100.0, 100.0);
        assert!(compare("{}", &base).is_err());
        // A fresh file without the link metrics is also broken — only
        // *baselines* may predate them.
        assert!(compare(&old_record(100.0, 100.0, 100.0), &base).is_err());
    }
}
