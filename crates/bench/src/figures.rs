//! Shared figure-check helpers. The panel layouts themselves live on
//! [`crate::experiment::ExperimentRun`].
//!
//! Every shape check routed through [`ok`] is tallied in thread-local
//! counters so an in-process driver (the `repro_all` dashboard) can run
//! a harness, then read back how many checks ran and how many failed
//! without scraping stdout.

use std::cell::Cell;

thread_local! {
    static CHECKS: Cell<usize> = const { Cell::new(0) };
    static MISMATCHES: Cell<usize> = const { Cell::new(0) };
}

/// Tick-mark for shape checks. Also bumps the thread-local tallies read
/// by [`take_counts`].
pub fn ok(b: bool) -> &'static str {
    CHECKS.with(|c| c.set(c.get() + 1));
    if b {
        "OK"
    } else {
        MISMATCHES.with(|c| c.set(c.get() + 1));
        "MISMATCH"
    }
}

/// Reset the thread-local check tallies to zero. Call before running a
/// harness whose checks you want to count in isolation.
pub fn reset_counts() {
    CHECKS.with(|c| c.set(0));
    MISMATCHES.with(|c| c.set(0));
}

/// Read `(checks, mismatches)` accumulated on this thread since the
/// last [`reset_counts`].
pub fn take_counts() -> (usize, usize) {
    (CHECKS.with(Cell::get), MISMATCHES.with(Cell::get))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_tallies_checks_and_mismatches() {
        reset_counts();
        assert_eq!(ok(true), "OK");
        assert_eq!(ok(false), "MISMATCH");
        assert_eq!(ok(true), "OK");
        assert_eq!(take_counts(), (3, 1));
        reset_counts();
        assert_eq!(take_counts(), (0, 0));
    }
}
