//! Shared figure rendering: the three-panel (queue / harvest / coverage)
//! layout used by Fig. 6 and Fig. 7.

use crate::chart::AsciiChart;
use crate::gnuplot::{write_script, PlotKind};
use crate::runner::{self, print_table};
use langcrawl_core::metrics::CrawlReport;

/// Render the (a) queue-size, (b) harvest-rate, (c) coverage panels for
/// a set of reports, and write their CSVs under `results/` with the
/// given file prefix.
pub fn panels(reports: &[CrawlReport], fig: &str, file_prefix: &str) {
    let mut chart_q = AsciiChart::new(
        &format!("{fig}(a)  URL queue size [URLs] vs pages crawled"),
        "queue",
    );
    for r in reports {
        chart_q.series(
            &r.strategy,
            r.samples
                .iter()
                .map(|s| (s.crawled as f64, s.queue_size as f64))
                .collect(),
        );
    }
    chart_q.print();
    print_table(
        &format!("{fig}(a) URL queue size [URLs]"),
        reports,
        14,
        |r, j| Some(r.samples[j].queue_size as f64),
    );

    let mut chart_h = AsciiChart::new(
        &format!("{fig}(b)  Harvest Rate [%] vs pages crawled"),
        "harvest%",
    )
    .y_max(100.0);
    for r in reports {
        chart_h.series(
            &r.strategy,
            r.samples
                .iter()
                .map(|s| (s.crawled as f64, 100.0 * s.harvest_rate()))
                .collect(),
        );
    }
    chart_h.print();
    print_table(&format!("{fig}(b) harvest rate [%]"), reports, 14, |r, j| {
        Some(100.0 * r.samples[j].harvest_rate())
    });

    let mut chart_c = AsciiChart::new(
        &format!("{fig}(c)  Coverage [%] vs pages crawled"),
        "cover%",
    )
    .y_max(100.0);
    for r in reports {
        chart_c.series(
            &r.strategy,
            r.samples
                .iter()
                .map(|s| (s.crawled as f64, 100.0 * r.coverage_at(s)))
                .collect(),
        );
    }
    chart_c.print();
    print_table(&format!("{fig}(c) coverage [%]"), reports, 14, |r, j| {
        Some(100.0 * r.coverage_at(&r.samples[j]))
    });

    println!();
    for r in reports {
        println!("{}", r.summary_row());
        runner::write_csv(
            r,
            &format!("{file_prefix}_{}", r.strategy.replace([' ', '=', '.'], "_")),
        );
    }
    write_script(&format!("{fig}(a) URL queue size"), PlotKind::QueueSize, reports, file_prefix);
    write_script(&format!("{fig}(b) Harvest Rate"), PlotKind::Harvest, reports, file_prefix);
    write_script(&format!("{fig}(c) Coverage"), PlotKind::Coverage, reports, file_prefix);
}

/// Tick-mark for shape checks.
pub fn ok(b: bool) -> &'static str {
    if b {
        "OK"
    } else {
        "MISMATCH"
    }
}
