//! Shared figure-check helpers. The panel layouts themselves live on
//! [`crate::experiment::ExperimentRun`].

/// Tick-mark for shape checks.
pub fn ok(b: bool) -> &'static str {
    if b {
        "OK"
    } else {
        "MISMATCH"
    }
}
