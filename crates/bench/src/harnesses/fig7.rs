//! Figure 7 — prioritized limited-distance strategy, Thai dataset,
//! N = 1..4: (a) URL queue size, (b) harvest rate, (c) coverage.
//!
//! Expected shapes (paper §5.2.2): queue size still controlled by N, but
//! — unlike the non-prioritized mode of Fig. 6 — harvest rate and
//! coverage stay essentially flat across N: crawling near-relevant URLs
//! first means the tunnel budget no longer costs precision. This is the
//! configuration the paper's conclusion recommends.

use crate::figures::ok;
use crate::Experiment;
use langcrawl_core::strategy::LimitedDistanceStrategy;
use langcrawl_webgraph::GeneratorConfig;

/// Run this harness (the body of the `fig7` binary).
pub fn run() {
    let mut e = Experiment::new(
        "fig7",
        "Figure 7: Prioritized Limited Distance, Thai dataset",
        GeneratorConfig::thai_like(),
    );
    for n in 1..=4u8 {
        e = e.strategy("prior-limited", move |_| {
            Box::new(LimitedDistanceStrategy::prioritized(n))
        });
    }
    let run = e.run();

    run.three_panels("Fig 7");

    println!("\nShape checks (paper §5.2.2, prioritized):");
    let queues: Vec<usize> = run.reports.iter().map(|r| r.max_queue).collect();
    let covers: Vec<f64> = run.reports.iter().map(|r| r.final_coverage()).collect();
    let early = run.early(6);
    let harvests: Vec<f64> = run.reports.iter().map(|r| r.harvest_at(early)).collect();
    println!(
        "  queue size still bounded by N: {queues:?}  [{}]",
        ok(queues.windows(2).all(|w| w[0] <= w[1]))
    );
    let hspread = harvests.iter().fold(f64::MIN, |a, &b| a.max(b))
        - harvests.iter().fold(f64::MAX, |a, &b| a.min(b));
    println!(
        "  harvest ~invariant in N (spread {:.1} pts): {:?}  [{}]",
        100.0 * hspread,
        harvests
            .iter()
            .map(|h| format!("{h:.3}"))
            .collect::<Vec<_>>(),
        ok(hspread < 0.08)
    );
    let cspread = covers.iter().fold(f64::MIN, |a, &b| a.max(b))
        - covers.iter().fold(f64::MAX, |a, &b| a.min(b));
    println!(
        "  coverage grows modestly then saturates (spread {:.1} pts): {:?}",
        100.0 * cspread,
        covers.iter().map(|c| format!("{c:.3}")).collect::<Vec<_>>()
    );
}
