//! Structural characterisation of the generated web spaces — the
//! measured counterpart of every generator knob, printed the way a crawl
//! study would characterise a real dataset.

use crate::figures::ok;
use crate::runner;
use langcrawl_webgraph::analysis::{host_size_histogram, link_stats, out_degree_histogram};
use langcrawl_webgraph::{DatasetStats, GeneratorConfig};

/// Run this harness (the body of the `graph_stats` binary).
pub fn run() {
    let seed = runner::env_seed();
    for (name, cfg) in [
        (
            "Thai-like",
            GeneratorConfig::thai_like().scaled(runner::env_scale(100_000)),
        ),
        (
            "Japanese-like",
            GeneratorConfig::japanese_like().scaled(runner::env_scale(100_000)),
        ),
    ] {
        let ws = cfg.build_shared(seed);
        let stats = DatasetStats::compute(&ws);
        let links = link_stats(&ws);
        println!("== {name} web space (n={}, seed={seed}) ==", ws.num_pages());
        println!(
            "  pages: {} URLs, {} OK HTML, {} relevant ({:.1}%), {} hosts, {} links",
            stats.total_urls,
            stats.total_html,
            stats.relevant_html,
            100.0 * stats.relevance_ratio,
            stats.hosts,
            stats.edges
        );
        println!(
            "  links: mean degree {:.1} (configured {:.1}), max degree {} (hub tail), \
             intra-host {:.2} (configured {:.2}), leaf share {:.2} (configured {:.2})",
            links.mean_out_degree,
            cfg.mean_out_degree,
            links.max_out_degree,
            links.intra_host_ratio,
            cfg.intra_host_ratio,
            links.leaf_link_share,
            cfg.leaf_link_share
        );
        println!(
            "  language locality: measured {:.2} overall / {:.2} from relevant hosts \
             (configured {:.2})  [{}]",
            links.locality,
            links.target_locality,
            cfg.locality,
            ok((links.target_locality - cfg.locality).abs() < 0.10)
        );
        println!(
            "\n{}",
            host_size_histogram(&ws).render("HTML pages per host (log2 bins)")
        );
        println!(
            "{}",
            out_degree_histogram(&ws).render("out-degree per HTML page (log2 bins)")
        );
    }
}
