//! Figure 6 — non-prioritized limited-distance strategy, Thai dataset,
//! N = 1..4: (a) URL queue size, (b) harvest rate, (c) coverage.
//!
//! Expected shapes (paper §5.2.2): queue size grows with N; coverage
//! grows with N toward soft-focused's 100%; harvest rate *falls* as N
//! grows — the flaw the prioritized mode (Fig. 7) fixes.

use crate::figures::ok;
use crate::Experiment;
use langcrawl_core::strategy::LimitedDistanceStrategy;
use langcrawl_webgraph::GeneratorConfig;

/// Run this harness (the body of the `fig6` binary).
pub fn run() {
    let mut e = Experiment::new(
        "fig6",
        "Figure 6: Non-Prioritized Limited Distance, Thai dataset",
        GeneratorConfig::thai_like(),
    );
    for n in 1..=4u8 {
        e = e.strategy("limited", move |_| {
            Box::new(LimitedDistanceStrategy::non_prioritized(n))
        });
    }
    let run = e.run();

    run.three_panels("Fig 6");

    println!("\nShape checks (paper §5.2.2, non-prioritized):");
    let queues: Vec<usize> = run.reports.iter().map(|r| r.max_queue).collect();
    let covers: Vec<f64> = run.reports.iter().map(|r| r.final_coverage()).collect();
    let early = run.early(6);
    let harvests: Vec<f64> = run.reports.iter().map(|r| r.harvest_at(early)).collect();
    println!(
        "  queue size grows with N:    {queues:?}  [{}]",
        ok(queues.windows(2).all(|w| w[0] < w[1]))
    );
    println!(
        "  coverage grows with N:      {:?}  [{}]",
        covers.iter().map(|c| format!("{c:.3}")).collect::<Vec<_>>(),
        ok(covers.windows(2).all(|w| w[0] <= w[1] + 1e-9))
    );
    println!(
        "  early harvest FALLS with N: {:?}  [{}]",
        harvests
            .iter()
            .map(|h| format!("{h:.3}"))
            .collect::<Vec<_>>(),
        ok(harvests.first() > harvests.last())
    );
}
