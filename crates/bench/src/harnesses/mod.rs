//! Reproduction harnesses — the bodies of every `src/bin` entry point
//! except `repro_all`, exposed as library functions so the full
//! reproduction can run in-process (one `SpaceCache`, one process,
//! no per-figure subprocess spawn). Each module has a `run()` that is
//! exactly what its thin binary stub calls.

pub mod ablation_classifier;
pub mod ablation_locality;
pub mod ablation_ordering;
pub mod ablation_seeds;
pub mod ablation_tld;
pub mod dataset_collection;
pub mod extensions;
pub mod fault_sensitivity;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod graph_stats;
pub mod parallelism_sweep;
pub mod table1;
pub mod table3;
pub mod timing_ext;
pub mod wider_languages;

/// All harnesses in dashboard order: `(name, entry point)` — tables
/// first, then figures, then ablations and extensions.
pub const ALL: &[(&str, fn())] = &[
    ("table1", table1::run),
    ("table3", table3::run),
    ("fig3", fig3::run),
    ("fig4", fig4::run),
    ("fig5", fig5::run),
    ("fig6", fig6::run),
    ("fig7", fig7::run),
    ("graph_stats", graph_stats::run),
    ("ablation_locality", ablation_locality::run),
    ("ablation_classifier", ablation_classifier::run),
    ("ablation_seeds", ablation_seeds::run),
    ("ablation_ordering", ablation_ordering::run),
    ("ablation_tld", ablation_tld::run),
    ("dataset_collection", dataset_collection::run),
    ("fault_sensitivity", fault_sensitivity::run),
    ("parallelism_sweep", parallelism_sweep::run),
    ("timing_ext", timing_ext::run),
    ("extensions", extensions::run),
    ("wider_languages", wider_languages::run),
];
