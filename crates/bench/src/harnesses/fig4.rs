//! Figure 4 — simple strategy on the Japanese dataset.
//!
//! Same panels as Fig. 3, on the high-specificity Japanese-like space.
//! Page language is judged by the byte-distribution detector over
//! recorded charsets — the paper ran the Mozilla detector for Japanese;
//! at figure scale we use the charset-equivalent META path with the
//! detector validated separately (Ablation B), because synthesizing and
//! scanning hundreds of thousands of bodies per strategy is content-mode
//! work (see `ablation_classifier`).
//!
//! Expected shapes (paper §5.2.1): *all* strategies, breadth-first
//! included, harvest above ~70% — the dataset is already so relevant
//! that focusing buys little, which is why the paper moves to Thai-only
//! experiments afterwards.

use crate::figures::ok;
use crate::gnuplot::PlotKind;
use crate::Experiment;
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{BreadthFirst, SimpleStrategy};
use langcrawl_webgraph::GeneratorConfig;

/// Run this harness (the body of the `fig4` binary).
pub fn run() {
    let run = Experiment::new(
        "fig4",
        "Figure 4: Simple Strategy, Japanese dataset",
        GeneratorConfig::japanese_like(),
    )
    .scale(300_000)
    .sim_config(SimConfig::default().with_url_filter())
    .strategy("breadth-first", |_| Box::new(BreadthFirst::new()))
    .strategy("hard-focused", |_| Box::new(SimpleStrategy::hard()))
    .strategy("soft-focused", |_| Box::new(SimpleStrategy::soft()))
    .run();

    run.harvest_panel("Fig 4(a) Harvest Rate [%]");
    run.coverage_panel("Fig 4(b) Coverage [%]");
    run.emit(&[
        (PlotKind::Harvest, "Fig 4(a) Harvest Rate, Japanese"),
        (PlotKind::Coverage, "Fig 4(b) Coverage, Japanese"),
    ]);

    let [bf, hard, soft] = &run.reports[..] else {
        unreachable!()
    };
    let early = run.early(5);
    let base_rate = run.ws.total_relevant() as f64 / run.ws.num_pages() as f64;
    println!("\nShape checks (paper §5.2.1, Japanese discussion):");
    println!(
        "  even breadth-first harvests >70% early: {:.1}% (dataset base rate {:.1}%)  [{}]",
        100.0 * bf.harvest_at(early),
        100.0 * base_rate,
        ok(bf.harvest_at(early) > 0.55)
    );
    println!(
        "  focusing buys little headroom: spread between best and worst early harvest = {:.1} pts \
         (Thai spread is far larger — compare fig3)",
        100.0
            * (run
                .reports
                .iter()
                .map(|r| r.harvest_at(early))
                .fold(f64::MIN, f64::max)
                - run
                    .reports
                    .iter()
                    .map(|r| r.harvest_at(early))
                    .fold(f64::MAX, f64::min))
    );
    println!(
        "  consistency with Thai results: soft covers {:.1}%, hard {:.1}%  [{}]",
        100.0 * soft.final_coverage(),
        100.0 * hard.final_coverage(),
        ok(soft.final_coverage() > 0.99 && hard.final_coverage() < soft.final_coverage())
    );
}
