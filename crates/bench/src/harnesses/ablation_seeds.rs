//! Ablation C — seed-set size sensitivity.
//!
//! Archiving crawls seed from a handful of national portals; the paper
//! does not report seed sensitivity, but coverage ceilings and early
//! harvest both depend on where the crawl starts. This ablation
//! regenerates the Thai-like space with 1, 2, 4, 8, 16 and 32 seed
//! hosts and re-runs hard- and soft-focused crawls.
//!
//! Expectation: soft-focused coverage is seed-insensitive (everything is
//! reachable); hard-focused coverage and early harvest improve modestly
//! with more seeds (more entry points into the relevant mainland), then
//! saturate.

use crate::figures::ok;
use crate::{runner, Experiment};
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::SimpleStrategy;
use langcrawl_webgraph::GeneratorConfig;

/// Run this harness (the body of the `ablation_seeds` binary).
pub fn run() {
    let scale = runner::env_scale(80_000);
    let seed = runner::env_seed();
    println!("== Ablation C: seed-count sweep, Thai dataset (n={scale}, seed={seed}) ==\n");
    println!(
        "{:>7} {:>14} {:>14} {:>15} {:>15}",
        "seeds", "soft coverage", "hard coverage", "soft harvest@⅙", "hard harvest@⅙"
    );

    let e = Experiment::new(
        "ablation_seeds",
        "seed-count sweep",
        GeneratorConfig::thai_like(),
    )
    .sim_config(SimConfig::default().with_url_filter())
    .strategy("soft", |_| Box::new(SimpleStrategy::soft()))
    .strategy("hard", |_| Box::new(SimpleStrategy::hard()));

    let mut soft_covs = Vec::new();
    for seeds in [1u32, 2, 4, 8, 16, 32] {
        let mut cfg = GeneratorConfig::thai_like().scaled(scale);
        cfg.seed_count = seeds;
        let ws = cfg.build_shared(seed);
        let reports = e.run_on(&ws);
        let early = ws.num_pages() as u64 / 6;
        println!(
            "{:>7} {:>13.1}% {:>13.1}% {:>14.1}% {:>14.1}%",
            seeds,
            100.0 * reports[0].final_coverage(),
            100.0 * reports[1].final_coverage(),
            100.0 * reports[0].harvest_at(early),
            100.0 * reports[1].harvest_at(early),
        );
        soft_covs.push(reports[0].final_coverage());
    }

    println!(
        "\nsoft-focused coverage is seed-insensitive (min {:.1}%)  [{}]",
        100.0 * soft_covs.iter().copied().fold(f64::MAX, f64::min),
        ok(soft_covs.iter().all(|&c| c > 0.99))
    );
}
