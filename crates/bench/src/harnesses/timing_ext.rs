//! Extension 1 — the paper's future work: transfer delays and
//! per-server access intervals.
//!
//! §6 plans to "enhance our crawling simulator by incorporating transfer
//! delays and access intervals". This harness runs the event-driven
//! timed simulator over the Thai space and measures:
//!
//! * wall-clock vs politeness-interval trade-off (per-server delay sweep),
//! * connection-count scaling,
//! * harvest-vs-wall-clock for the paper's strategies (the focused
//!   advantage survives the timing model).

use crate::figures::ok;
use crate::runner;
use langcrawl_core::classifier::MetaClassifier;
use langcrawl_core::strategy::{BreadthFirst, SimpleStrategy};
use langcrawl_core::timing::{run_timed, TimingConfig};
use langcrawl_webgraph::GeneratorConfig;

/// Run this harness (the body of the `timing_ext` binary).
pub fn run() {
    let scale = runner::env_scale(40_000);
    let seed = runner::env_seed();
    println!("== Extension: timing model (politeness + transfer delays), Thai (n={scale}, seed={seed}) ==\n");
    let ws = GeneratorConfig::thai_like()
        .scaled(scale)
        .build_shared(seed);
    let classifier = MetaClassifier::target(ws.target_language());

    println!("Politeness sweep (32 connections, breadth-first):");
    println!(
        "{:>12} {:>14} {:>12} {:>12}",
        "delay [ms]", "wall clock [s]", "pages/s", "utilization"
    );
    let mut clocks = Vec::new();
    for delay in [0u64, 250, 1_000, 4_000, 15_000] {
        let cfg = TimingConfig {
            per_server_delay_ms: delay,
            ..TimingConfig::default()
        };
        let r = run_timed(&ws, &cfg, &mut BreadthFirst::new(), &classifier);
        println!(
            "{:>12} {:>14.1} {:>12.1} {:>11.1}%",
            delay,
            r.wall_clock_ms as f64 / 1_000.0,
            r.pages_per_second(),
            100.0 * r.utilization
        );
        clocks.push(r.wall_clock_ms);
    }
    println!(
        "  politeness slows the crawl monotonically  [{}]",
        ok(clocks.windows(2).all(|w| w[0] <= w[1]))
    );

    println!("\nConnection scaling, bandwidth-bound regime (no politeness):");
    println!(
        "{:>13} {:>14} {:>12}",
        "connections", "wall clock [s]", "pages/s"
    );
    let mut speed = Vec::new();
    for conns in [1usize, 4, 16, 64] {
        let cfg = TimingConfig {
            connections: conns,
            per_server_delay_ms: 0,
            ..TimingConfig::default()
        };
        let r = run_timed(&ws, &cfg, &mut BreadthFirst::new(), &classifier);
        println!(
            "{:>13} {:>14.1} {:>12.1}",
            conns,
            r.wall_clock_ms as f64 / 1000.0,
            r.pages_per_second()
        );
        speed.push(r.pages_per_second());
    }
    // Host-level serialization (one in-flight fetch per host) caps the
    // useful parallelism at the number of distinct frontier hosts, which
    // shrinks with the space; the claim under test is only that many
    // connections are meaningfully faster than one.
    println!(
        "  throughput scales with connections when bandwidth-bound ({:.1}x from 1 to 64)  [{}]",
        speed.last().unwrap() / speed.first().unwrap(),
        ok(*speed.last().unwrap() > 1.3 * speed.first().unwrap())
    );

    println!("\nConnection scaling, politeness-bound regime (1 s/host):");
    println!(
        "{:>13} {:>14} {:>12}",
        "connections", "wall clock [s]", "pages/s"
    );
    let mut polite_speed = Vec::new();
    for conns in [1usize, 16, 256] {
        let cfg = TimingConfig {
            connections: conns,
            ..TimingConfig::default()
        };
        let r = run_timed(&ws, &cfg, &mut BreadthFirst::new(), &classifier);
        println!(
            "{:>13} {:>14.1} {:>12.1}",
            conns,
            r.wall_clock_ms as f64 / 1000.0,
            r.pages_per_second()
        );
        polite_speed.push(r.pages_per_second());
    }
    println!(
        "  extra connections buy nothing once politeness-bound (spread {:.1}%)  [{}]",
        100.0
            * (polite_speed.iter().copied().fold(f64::MIN, f64::max)
                / polite_speed.iter().copied().fold(f64::MAX, f64::min)
                - 1.0),
        ok(polite_speed.iter().copied().fold(f64::MIN, f64::max)
            < polite_speed.iter().copied().fold(f64::MAX, f64::min) * 1.25)
    );

    println!("\nHarvest vs wall clock (32 connections, 1 s politeness):");
    let cfg = TimingConfig::default();
    let soft = run_timed(&ws, &cfg, &mut SimpleStrategy::soft(), &classifier);
    let bf = run_timed(&ws, &cfg, &mut BreadthFirst::new(), &classifier);
    let no_delay = TimingConfig {
        per_server_delay_ms: 0,
        ..TimingConfig::default()
    };
    let soft_nd = run_timed(&ws, &no_delay, &mut SimpleStrategy::soft(), &classifier);
    let bf_nd = run_timed(&ws, &no_delay, &mut BreadthFirst::new(), &classifier);
    println!(
        "{:>14} {:>16} {:>16}",
        "time [s]", "soft harvest", "bf harvest"
    );
    let horizon = soft.wall_clock_ms.min(bf.wall_clock_ms);
    for i in 1..=8u64 {
        let t = horizon * i / 8;
        let h = |r: &langcrawl_core::timing::TimedReport| {
            r.time_samples
                .iter()
                .take_while(|s| s.time_ms <= t)
                .last()
                .map_or(0.0, |s| 100.0 * s.relevant as f64 / s.crawled.max(1) as f64)
        };
        println!(
            "{:>14.1} {:>15.1}% {:>15.1}%",
            t as f64 / 1000.0,
            h(&soft),
            h(&bf)
        );
    }
    let early_frac = |r: &langcrawl_core::timing::TimedReport, t: u64| {
        r.time_samples
            .iter()
            .take_while(|s| s.time_ms <= t)
            .last()
            .map_or(0.0, |s| s.relevant as f64 / s.crawled.max(1) as f64)
    };
    let horizon_nd = soft_nd.wall_clock_ms.min(bf_nd.wall_clock_ms);
    let adv_nd = early_frac(&soft_nd, horizon_nd / 8) - early_frac(&bf_nd, horizon_nd / 8);
    let adv_polite = early_frac(&soft, horizon / 8) - early_frac(&bf, horizon / 8);
    println!("\nTiming-model findings (the effects the paper's §6 wanted to study):");
    println!(
        "  focused advantage at 1/8 of the crawl, no politeness:      {:+.1} pts",
        100.0 * adv_nd
    );
    println!(
        "  focused advantage at 1/8 of the crawl, 1 s/host politeness: {:+.1} pts  [{}]",
        100.0 * adv_polite,
        ok(adv_polite > 0.0)
    );
    println!(
        "  the focused advantage survives per-server politeness because the back \
         queues let connections wait on hot relevant hosts instead of wandering \
         off-region; the price is paid in wall clock and idle connections:"
    );
    println!(
        "    soft: {:.0} s wall clock, {:.1}% utilization | bf: {:.0} s, {:.1}%",
        soft.wall_clock_ms as f64 / 1000.0,
        100.0 * soft.utilization,
        bf.wall_clock_ms as f64 / 1000.0,
        100.0 * bf.utilization
    );
}
