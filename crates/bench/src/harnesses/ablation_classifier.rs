//! Ablation B — classifier choice: META label vs byte detector vs oracle.
//!
//! §3.2 of the paper offers two relevance-judgment methods and notes
//! (§3, observation 3) that pages are sometimes mislabeled. This
//! ablation runs the same hard-focused crawl under all three classifiers
//! on a content-mode-sized space. The detector path synthesizes real
//! page bytes and runs the composite detector — the full Mozilla-style
//! pipeline the paper used for Japanese.
//!
//! Expectation: oracle ≥ detector ≥ META on coverage (hard mode punishes
//! false negatives by cutting off expansion), with META's deficit
//! tracking the mislabel + missing-META + UTF-8 rates.

use crate::figures::ok;
use crate::{runner, Experiment};
use langcrawl_core::classifier::{
    Classifier, DetectorClassifier, MetaClassifier, OracleClassifier,
};
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::SimpleStrategy;
use langcrawl_webgraph::GeneratorConfig;

fn hard_crawl() -> Experiment {
    Experiment::new(
        "classifier",
        "Ablation B: classifier comparison, Thai dataset",
        GeneratorConfig::thai_like(),
    )
    .quiet()
    .sim_config(SimConfig::default().with_url_filter())
    .strategy("hard", |_| Box::new(SimpleStrategy::hard()))
}

/// Run this harness (the body of the `ablation_classifier` binary).
pub fn run() {
    let scale = runner::env_scale(25_000); // detector path scans real bytes
    let seed = runner::env_seed();
    println!("== Ablation B: classifier comparison, Thai dataset (n={scale}, seed={seed}) ==");
    println!("(hard-focused crawl; detector synthesizes page bytes and runs the real prober)\n");
    let ws = GeneratorConfig::thai_like()
        .scaled(scale)
        .build_shared(seed);

    let experiments = [
        hard_crawl().oracle_classifier(),
        hard_crawl()
            .classifier_with(|ws| Box::new(DetectorClassifier::target(ws.target_language()))),
        hard_crawl(), // META is the default judgment path
    ];

    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12}",
        "classifier", "crawled", "harvest", "coverage", "max queue"
    );
    let mut coverages = Vec::new();
    for e in &experiments {
        let r = &e.run_on(&ws)[0];
        println!(
            "{:<10} {:>10} {:>11.1}% {:>11.1}% {:>12}",
            r.classifier,
            r.crawled,
            100.0 * r.final_harvest(),
            100.0 * r.final_coverage(),
            r.max_queue
        );
        coverages.push(r.final_coverage());
    }

    println!("\nShape checks:");
    println!(
        "  oracle >= detector:  {:.3} vs {:.3}  [{}]",
        coverages[0],
        coverages[1],
        ok(coverages[0] >= coverages[1] - 0.01)
    );
    println!(
        "  detector >= META:    {:.3} vs {:.3}  [{}]",
        coverages[1],
        coverages[2],
        ok(coverages[1] >= coverages[2] - 0.01)
    );
    println!(
        "  META pays for mislabels (deficit vs oracle): {:.1} pts",
        100.0 * (coverages[0] - coverages[2])
    );

    // Classifier confusion counts against ground truth, page by page.
    let classifiers: Vec<Box<dyn Classifier + Sync>> = vec![
        Box::new(OracleClassifier::target(ws.target_language())),
        Box::new(DetectorClassifier::target(ws.target_language())),
        Box::new(MetaClassifier::target(ws.target_language())),
    ];
    println!("\nPer-page agreement with ground truth (OK HTML pages):");
    for c in &classifiers {
        let mut tp = 0u32;
        let mut fp = 0u32;
        let mut fne = 0u32;
        let mut tn = 0u32;
        for p in ws.page_ids() {
            if !ws.meta(p).is_ok_html() {
                continue;
            }
            let truth = ws.is_relevant(p);
            let judged = c.relevance(&ws, p) > 0.5;
            match (truth, judged) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fne += 1,
                (false, false) => tn += 1,
            }
        }
        let prec = tp as f64 / (tp + fp).max(1) as f64;
        let rec = tp as f64 / (tp + fne).max(1) as f64;
        println!(
            "  {:<10} precision={:.3} recall={:.3}  (tp={tp} fp={fp} fn={fne} tn={tn})",
            c.name(),
            prec,
            rec
        );
    }
}
