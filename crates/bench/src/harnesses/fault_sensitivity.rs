//! Fault-sensitivity sweep — how robust is each crawl strategy to an
//! unreliable web?
//!
//! The paper's virtual web answers every fetch deterministically; a
//! national-archive crawl faces timeouts, sporadic 503s and dead hosts.
//! This harness layers the seeded fault model over one shared Thai-like
//! space at increasing failure rates and reruns the paper's three
//! strategy families under the default retry policy, reporting harvest
//! **net of failures** (relevant pages delivered per fetch attempt,
//! retries charged) next to the usual per-page harvest.
//!
//! Expected shape: retry traffic grows with the failure rate while the
//! zero-rate sweep point stays bit-identical to a fault-free run (the
//! `fault_conformance` suite pins the same property at the report
//! level), and net harvest decays monotonically-ish as bandwidth is
//! diverted to retries.

use crate::figures::ok;
use crate::{runner, Experiment};
use langcrawl_core::metrics::CrawlReport;
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{BreadthFirst, SimpleStrategy};
use langcrawl_webgraph::{FaultConfig, GeneratorConfig};
use std::io::Write;

/// Swept base transient-failure rates. `0.0` uses the all-zero config
/// (not `FaultConfig::with_rate(0.0)`, which still marks 1% of hosts
/// dead) so the first row doubles as a live conformance check.
const RATES: &[f64] = &[0.0, 0.05, 0.1, 0.2, 0.4];

fn experiment(fault: FaultConfig) -> Experiment {
    Experiment::new(
        "fault_sensitivity",
        "fault sensitivity",
        GeneratorConfig::thai_like(),
    )
    .quiet()
    .oracle_classifier()
    .sim_config(SimConfig::default().with_faults(fault))
    .strategy("bf", |_| Box::new(BreadthFirst::new()))
    .strategy("soft", |_| Box::new(SimpleStrategy::soft()))
    .strategy("hard", |_| Box::new(SimpleStrategy::hard()))
}

/// Run this harness (the body of the `fault_sensitivity` binary).
pub fn run() {
    let scale = runner::env_scale(40_000);
    let seed = runner::env_seed();
    println!(
        "== Fault sensitivity: failure-rate sweep, Thai dataset (n={scale}, seed={seed}) ==\n"
    );
    println!(
        "{:>6} {:>6} {:>9} {:>9} {:>9} {:>8} {:>9} {:>8} {:>8}",
        "rate", "strat", "crawled", "attempts", "retries", "gave_up", "harvest", "net", "cover"
    );

    let ws = GeneratorConfig::thai_like()
        .scaled(scale)
        .build_shared(seed);
    let mut csv = String::from(
        "rate,strategy,crawled,attempts,retries,gave_up,harvest,net_harvest,coverage\n",
    );
    // reports[rate index] = one report per strategy (bf, soft, hard).
    let mut by_rate: Vec<Vec<CrawlReport>> = Vec::new();
    for &rate in RATES {
        let fault = if rate == 0.0 {
            FaultConfig::default()
        } else {
            FaultConfig::with_rate(rate)
        };
        let reports = experiment(fault).run_on(&ws);
        for r in &reports {
            println!(
                "{:>6.2} {:>6} {:>9} {:>9} {:>9} {:>8} {:>8.1}% {:>7.1}% {:>7.1}%",
                rate,
                crate::gnuplot::sanitize(&r.strategy)
                    .chars()
                    .take(6)
                    .collect::<String>(),
                r.crawled,
                r.attempts,
                r.retries,
                r.gave_up,
                100.0 * r.final_harvest(),
                100.0 * r.harvest_net(),
                100.0 * r.final_coverage(),
            );
            csv.push_str(&format!(
                "{},{},{},{},{},{},{:.6},{:.6},{:.6}\n",
                rate,
                r.strategy,
                r.crawled,
                r.attempts,
                r.retries,
                r.gave_up,
                r.final_harvest(),
                r.harvest_net(),
                r.final_coverage(),
            ));
        }
        by_rate.push(reports);
    }

    let dir = runner::results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("fault_sensitivity.csv");
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes())) {
            Ok(()) => println!("\n  [csv] {}", path.display()),
            Err(e) => eprintln!("\n  [csv] cannot write fault_sensitivity.csv: {e}"),
        }
    }

    // Shape checks.
    let zero = &by_rate[0];
    let clean = zero
        .iter()
        .all(|r| r.attempts == r.crawled && r.retries == 0 && r.gave_up == 0);
    println!(
        "\nzero-rate rows report no retry traffic                 [{}]",
        ok(clean)
    );
    let strategies = zero.len();
    let retries_grow = (0..strategies).all(|s| {
        by_rate
            .windows(2)
            .all(|w| w[1][s].retries >= w[0][s].retries)
            && by_rate.last().unwrap()[s].retries > 0
    });
    println!(
        "retry traffic grows with the failure rate              [{}]",
        ok(retries_grow)
    );
    let net_decays =
        (0..strategies).all(|s| by_rate.last().unwrap()[s].harvest_net() < zero[s].harvest_net());
    println!(
        "net harvest at 40% faults is below the fault-free net  [{}]",
        ok(net_decays)
    );
    let coverage_suffers = (0..strategies)
        .all(|s| by_rate.last().unwrap()[s].relevant_crawled < zero[s].relevant_crawled);
    println!(
        "faults cost delivered relevant pages                   [{}]",
        ok(coverage_suffers)
    );
}
