//! Figure 5 — URL-queue size of the simple strategy on the Thai dataset.
//!
//! The paper's motivation for the limited-distance strategy: soft-focused
//! crawling keeps every discovered URL queued, peaking at ~8 M of 14 M
//! URLs (~57%), while hard-focused stays near 1 M (~7%) — soft "would end
//! up with the exhaustion of physical space for the URL queue" at real
//! web scale. Expected shape here: soft's pending-URL curve several-fold
//! above hard's, with hard's crawl ending early.

use crate::figures::ok;
use crate::gnuplot::PlotKind;
use crate::Experiment;
use langcrawl_core::strategy::SimpleStrategy;
use langcrawl_webgraph::GeneratorConfig;

/// Run this harness (the body of the `fig5` binary).
pub fn run() {
    let run = Experiment::new(
        "fig5",
        "Figure 5: URL queue size, Simple Strategy, Thai dataset",
        GeneratorConfig::thai_like(),
    )
    .strategy("soft-focused", |_| Box::new(SimpleStrategy::soft()))
    .strategy("hard-focused", |_| Box::new(SimpleStrategy::hard()))
    .run();

    run.queue_panel("Fig 5 URL queue size [URLs]");
    run.emit(&[(PlotKind::QueueSize, "Fig 5 URL Queue Size, Thai")]);

    let [soft, hard] = &run.reports[..] else {
        unreachable!()
    };
    let n = run.ws.num_pages() as f64;
    println!("\nShape checks (paper §5.2.1, Fig. 5):");
    println!(
        "  soft peak: {} URLs = {:.1}% of space (paper: ~57%)",
        soft.max_queue,
        100.0 * soft.max_queue as f64 / n
    );
    println!(
        "  hard peak: {} URLs = {:.1}% of space (paper: ~7%)",
        hard.max_queue,
        100.0 * hard.max_queue as f64 / n
    );
    println!(
        "  soft dwarfs hard by {:.1}x (paper: ~8x)  [{}]",
        soft.max_queue as f64 / hard.max_queue as f64,
        ok(soft.max_queue > 3 * hard.max_queue)
    );

    // The paper's §5.2.1 warning, quantified: "Scaling up this to the
    // case of the real Web, we would end up with the exhaustion of
    // physical space for the URL queue." A frontier entry costs roughly
    // one URL string (~64 bytes) plus index overhead (~48 bytes).
    const BYTES_PER_ENTRY: f64 = 112.0;
    let soft_frac = soft.max_queue as f64 / n;
    let hard_frac = hard.max_queue as f64 / n;
    for (label, urls) in [
        ("the paper's Thai log", 14.0e6),
        ("a full national web", 1.0e9),
    ] {
        println!(
            "  projected peak frontier at {label} ({:.0}M URLs): soft ≈ {:.1} GB, hard ≈ {:.1} GB",
            urls / 1.0e6,
            soft_frac * urls * BYTES_PER_ENTRY / 1.0e9,
            hard_frac * urls * BYTES_PER_ENTRY / 1.0e9
        );
    }
    println!(
        "  (2004-era crawl machines had 2–8 GB of RAM: the soft-focused queue \
         does not fit, the hard/limited queues do — the paper's motivation for §3.3.2)"
    );
}
