//! Ablation A — is *language locality* really what makes focused
//! crawling work?
//!
//! The paper's §3 argues focused crawling transfers to language-specific
//! crawling **because** the Web exhibits language locality. This ablation
//! sweeps the generator's locality knob (probability that an inter-host
//! link stays within its language) and measures the focused crawler's
//! early-harvest advantage over breadth-first. Expectation: the advantage
//! shrinks toward zero as locality decays toward the unbiased level.

use crate::figures::ok;
use crate::{runner, Experiment};
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{BreadthFirst, SimpleStrategy};
use langcrawl_webgraph::GeneratorConfig;

/// Run this harness (the body of the `ablation_locality` binary).
pub fn run() {
    let scale = runner::env_scale(80_000);
    let seed = runner::env_seed();
    println!("== Ablation A: locality sweep, Thai dataset (n={scale}, seed={seed}) ==\n");
    println!(
        "{:>9} {:>14} {:>14} {:>14} {:>12}",
        "locality", "bf harvest", "soft harvest", "hard harvest", "advantage"
    );

    let e = Experiment::new(
        "ablation_locality",
        "locality sweep",
        GeneratorConfig::thai_like(),
    )
    .oracle_classifier()
    .sim_config(SimConfig::default().with_url_filter())
    .strategy("bf", |_| Box::new(BreadthFirst::new()))
    .strategy("soft", |_| Box::new(SimpleStrategy::soft()))
    .strategy("hard", |_| Box::new(SimpleStrategy::hard()));

    let mut advantages = Vec::new();
    for locality in [0.40f64, 0.55, 0.70, 0.82, 0.92, 0.98] {
        let ws = GeneratorConfig::thai_like()
            .scaled(scale)
            .with_locality(locality)
            .build_shared(seed);
        let reports = e.run_on(&ws);
        let early = ws.num_pages() as u64 / 6;
        let bf = reports[0].harvest_at(early);
        let soft = reports[1].harvest_at(early);
        let hard = reports[2].harvest_at(early);
        let adv = soft.max(hard) - bf;
        advantages.push(adv);
        println!(
            "{:>9.2} {:>13.1}% {:>13.1}% {:>13.1}% {:>11.1}pt",
            locality,
            100.0 * bf,
            100.0 * soft,
            100.0 * hard,
            100.0 * adv
        );
    }

    let rising = advantages.first().unwrap() < advantages.last().unwrap();
    println!(
        "\nfocused advantage grows with language locality  [{}]",
        ok(rising)
    );
    println!(
        "(the paper's premise: no locality, no point focusing — observed \
         advantage ranges {:.1}pt → {:.1}pt)",
        100.0 * advantages.first().unwrap(),
        100.0 * advantages.last().unwrap()
    );
}
