//! The §6 extension: "conduct more simulations … with a wider range of
//! crawling strategies" — and languages. The paper's pipeline is
//! language-agnostic by construction; this harness proves it by running
//! the full §3 stack for **four** target languages, each classified
//! through its own charset family (Table 1 rows plus the EUC-KR/GB2312
//! rows this reproduction adds).

use crate::figures::ok;
use crate::{runner, Experiment};
use langcrawl_core::classifier::DetectorClassifier;
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{BreadthFirst, SimpleStrategy};
use langcrawl_webgraph::GeneratorConfig;

/// Run this harness (the body of the `wider_languages` binary).
pub fn run() {
    let scale = runner::env_scale(60_000);
    let seed = runner::env_seed();
    println!(
        "== Wider languages: the paper's pipeline on four targets (n={scale}, seed={seed}) ==\n"
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "target", "relevant", "bf harvest", "soft harvest", "soft cover", "hard cover"
    );

    let e = Experiment::new("wider", "wider languages", GeneratorConfig::thai_like())
        .quiet()
        .sim_config(SimConfig::default().with_url_filter())
        .strategy("bf", |_| Box::new(BreadthFirst::new()))
        .strategy("soft", |_| Box::new(SimpleStrategy::soft()))
        .strategy("hard", |_| Box::new(SimpleStrategy::hard()));

    let mut all_ok = true;
    for cfg in [
        GeneratorConfig::thai_like().scaled(scale),
        GeneratorConfig::japanese_like().scaled(scale),
        GeneratorConfig::korean_like().scaled(scale),
        GeneratorConfig::chinese_like().scaled(scale),
    ] {
        let ws = cfg.build_shared(seed);
        let reports = e.run_on(&ws);
        let early = ws.num_pages() as u64 / 6;
        let fine = reports[1].harvest_at(early) > reports[0].harvest_at(early)
            && reports[1].final_coverage() > 0.99;
        all_ok &= fine;
        println!(
            "{:<14} {:>9.1}% {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            ws.target_language().name(),
            100.0 * ws.total_relevant() as f64 / ws.total_ok_html() as f64,
            100.0 * reports[0].harvest_at(early),
            100.0 * reports[1].harvest_at(early),
            100.0 * reports[1].final_coverage(),
            100.0 * reports[2].final_coverage(),
        );
    }
    println!(
        "\nfocused > breadth-first early and soft coverage = 100% for every target  [{}]",
        ok(all_ok)
    );

    // Detector-path spot check per language (content mode, small slice).
    println!(
        "\nByte-detector classification accuracy per language (content mode, 200 pages each):"
    );
    for cfg in [
        GeneratorConfig::thai_like().scaled(6_000),
        GeneratorConfig::japanese_like().scaled(6_000),
        GeneratorConfig::korean_like().scaled(6_000),
        GeneratorConfig::chinese_like().scaled(6_000),
    ] {
        let ws = cfg.build_shared(seed);
        let det = DetectorClassifier::target(ws.target_language());
        let mut agree = 0u32;
        let mut total = 0u32;
        for p in ws.page_ids() {
            if !ws.meta(p).is_ok_html() {
                continue;
            }
            total += 1;
            if total > 200 {
                break;
            }
            if (langcrawl_core::classifier::Classifier::relevance(&det, &ws, p) > 0.5)
                == ws.is_relevant(p)
            {
                agree += 1;
            }
        }
        let rate = agree as f64 / total.min(200) as f64;
        println!(
            "  {:<10} {:>5.1}%  [{}]",
            ws.target_language().name(),
            100.0 * rate,
            ok(rate > 0.9)
        );
    }

    // A hard run with the byte detector end-to-end on the Korean space.
    let run = Experiment::new(
        "wider_ko",
        "Korean detector crawl",
        GeneratorConfig::korean_like(),
    )
    .quiet()
    .scale(8_000)
    .sim_config(SimConfig::default().with_url_filter())
    .classifier_with(|ws| Box::new(DetectorClassifier::target(ws.target_language())))
    .strategy("hard", |_| Box::new(SimpleStrategy::hard()))
    .run();
    let r = &run.reports[0];
    println!(
        "\nhard-focused Korean crawl with the byte detector: harvest {:.1}%, coverage {:.1}%  [{}]",
        100.0 * r.final_harvest(),
        100.0 * r.final_coverage(),
        ok(r.final_coverage() > 0.5)
    );
}
