//! Extension 2 — the related-work strategies the paper describes but
//! does not evaluate: the HITS distiller (§2.1) and the context-graph
//! crawler (§2.2), side by side with the paper's own strategies.
//!
//! The context-graph crawler here is *idealized* (perfect layer
//! classifier computed from the LinkDB), so it upper-bounds what
//! Diligenti et al.'s approach could achieve on this space; the
//! limited-distance strategy competing within a few points of it — with
//! no reverse-link requirement — is the paper's §2.2 argument made
//! quantitative.

use crate::figures::ok;
use crate::{write_csv_reporting, Experiment};
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{
    ContextGraphStrategy, HitsStrategy, LimitedDistanceStrategy, SimpleStrategy,
};
use langcrawl_webgraph::GeneratorConfig;

/// Run this harness (the body of the `extensions` binary).
pub fn run() {
    let run = Experiment::new(
        "ext",
        "Extensions: HITS distiller & context-graph vs paper strategies, Thai",
        GeneratorConfig::thai_like(),
    )
    .scale(80_000)
    .sim_config(SimConfig::default().with_url_filter())
    .strategy("soft", |_| Box::new(SimpleStrategy::soft()))
    .strategy("prior-limited-3", |_| {
        Box::new(LimitedDistanceStrategy::prioritized(3))
    })
    .strategy("soft+hits", |_| {
        Box::new(HitsStrategy::with_params(2_000, 20, 5))
    })
    .strategy("context-graph", |ws| {
        Box::new(ContextGraphStrategy::new(ws, 4))
    })
    .strategy("context-graph-noisy", |ws| {
        Box::new(ContextGraphStrategy::new(ws, 4).with_noise(150))
    })
    .run();

    let early = run.early(6);
    println!(
        "{:<34} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "strategy", "crawled", "harvest@⅙", "harvest", "coverage", "max queue"
    );
    for r in &run.reports {
        println!(
            "{:<34} {:>10} {:>11.1}% {:>11.1}% {:>11.1}% {:>12}",
            r.strategy,
            r.crawled,
            100.0 * r.harvest_at(early),
            100.0 * r.final_harvest(),
            100.0 * r.final_coverage(),
            r.max_queue
        );
        write_csv_reporting(
            r,
            &format!("ext_{}", r.strategy.replace([' ', '=', '.'], "_")),
        );
    }

    let soft = &run.reports[0];
    let limited = &run.reports[1];
    let cg = &run.reports[3];
    println!("\nObservations:");
    println!(
        "  prioritized limited-distance holds its own against the idealized \
         context-graph crawler: coverage {:.1}% vs {:.1}%, early harvest {:.1}% vs {:.1}%  [{}]",
        100.0 * limited.final_coverage(),
        100.0 * cg.final_coverage(),
        100.0 * limited.harvest_at(early),
        100.0 * cg.harvest_at(early),
        ok(limited.final_coverage() + 0.15 > cg.final_coverage())
    );
    println!(
        "  limited-distance needs {:.0}% of soft's queue memory ({} vs {})",
        100.0 * limited.max_queue as f64 / soft.max_queue as f64,
        limited.max_queue,
        soft.max_queue
    );
}
