//! Figure 3 — simple strategy on the Thai dataset.
//!
//! Reproduces both panels: (a) harvest rate and (b) coverage versus
//! pages crawled, for breadth-first, hard-focused and soft-focused
//! crawling. Page language is judged from the META charset label, as the
//! paper did for Thai (§3.2).
//!
//! Expected shapes (paper §5.2.1): both focused modes sustain roughly
//! 60% harvest over the early crawl versus the breadth-first baseline at
//! the dataset mean; soft-focused reaches 100% coverage by the end of
//! the crawl; hard-focused stops early at ~70% coverage.

use crate::figures::ok;
use crate::gnuplot::PlotKind;
use crate::Experiment;
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{BreadthFirst, SimpleStrategy};
use langcrawl_webgraph::GeneratorConfig;

/// Run this harness (the body of the `fig3` binary).
pub fn run() {
    let run = Experiment::new(
        "fig3",
        "Figure 3: Simple Strategy, Thai dataset",
        GeneratorConfig::thai_like(),
    )
    .sim_config(SimConfig::default().with_url_filter())
    .strategy("breadth-first", |_| Box::new(BreadthFirst::new()))
    .strategy("hard-focused", |_| Box::new(SimpleStrategy::hard()))
    .strategy("soft-focused", |_| Box::new(SimpleStrategy::soft()))
    .run();

    run.harvest_panel("Fig 3(a) Harvest Rate [%]");
    run.coverage_panel("Fig 3(b) Coverage [%]");
    run.emit(&[
        (PlotKind::Harvest, "Fig 3(a) Harvest Rate, Thai"),
        (PlotKind::Coverage, "Fig 3(b) Coverage, Thai"),
    ]);

    // The paper's headline claims, as checks the harness itself reports:
    let [bf, hard, soft] = &run.reports[..] else {
        unreachable!()
    };
    let early = run.early(7); // "the first part of the crawl"
    println!("\nShape checks (paper §5.2.1):");
    println!(
        "  focused beat breadth-first early:   hard {:.1}% / soft {:.1}% vs bf {:.1}%  [{}]",
        100.0 * hard.harvest_at(early),
        100.0 * soft.harvest_at(early),
        100.0 * bf.harvest_at(early),
        ok(hard.harvest_at(early) > bf.harvest_at(early)
            && soft.harvest_at(early) > bf.harvest_at(early))
    );
    println!(
        "  soft reaches ~100% coverage:        {:.1}%  [{}]",
        100.0 * soft.final_coverage(),
        ok(soft.final_coverage() > 0.99)
    );
    println!(
        "  hard truncates at the ceiling:      {:.1}%  [{}]",
        100.0 * hard.final_coverage(),
        ok(hard.final_coverage() < 0.9 && hard.final_coverage() > 0.4)
    );
}
