//! Parallelism sweep — what does the language-specific crawl look like
//! when the crawler stops being serial?
//!
//! The paper's simulator fetches one page per tick; a production
//! crawler runs hundreds of connections bounded by per-host politeness.
//! This harness runs the soft-focused Thai crawl under the virtual-time
//! scheduler at `K ∈ {1, 4, 16}` fetch slots, then holds `K = 16` and
//! turns on per-host politeness gaps, reporting for every configuration
//! the makespan (virtual ticks), speedup over serial, slot-idle stall
//! ticks, politeness waits, cross-shard discovery handoffs, and the
//! shard load imbalance (max/mean accepted pushes per shard).
//!
//! Expected shape: the schedule changes but the *crawl* does not — a
//! zero-fault soft-focused run crawls the same page set at any `K`, so
//! harvest and coverage land identically while the makespan shrinks
//! toward `attempts / K`; politeness pushes it back up and idles slots.
//! The `K = 1` row doubles as a live conformance check (its makespan is
//! exactly one tick per attempt, the legacy clock).
//!
//! Two CSVs land in the results dir: `parallelism_sweep.csv` holds the
//! per-configuration summary rows; `parallelism_sweep_curves.csv` holds
//! the sampled harvest/coverage/queue-size trajectories for plotting
//! crawl progress against virtual time at each configuration.

use crate::figures::ok;
use crate::runner;
use langcrawl_core::classifier::OracleClassifier;
use langcrawl_core::engine::{CrawlEngine, EngineConfig, EngineOutcome};
use langcrawl_core::event::{EventSink, MetricsSampler, SchedStatsSink};
use langcrawl_core::sched::SchedConfig;
use langcrawl_core::shard::ShardStats;
use langcrawl_core::strategy::SimpleStrategy;
use langcrawl_webgraph::GeneratorConfig;
use std::io::Write;

/// Swept configurations: `(slots, politeness gap, jitter spread)`.
const CONFIGS: &[(u32, u64, u64)] = &[(1, 0, 0), (4, 0, 0), (16, 0, 0), (16, 2, 0), (16, 6, 2)];

struct SweepRow {
    slots: u32,
    gap: u64,
    spread: u64,
    outcome: EngineOutcome,
    stats: SchedStatsSink,
    shards: Vec<ShardStats>,
    samples: Vec<langcrawl_core::metrics::Sample>,
}

/// Max-over-mean of accepted pushes per shard — 1.0 is perfectly
/// balanced; the hash partition should keep this low single digits.
fn imbalance(shards: &[ShardStats]) -> f64 {
    let total: u64 = shards.iter().map(|s| s.pushes).sum();
    if total == 0 || shards.is_empty() {
        return 1.0;
    }
    let mean = total as f64 / shards.len() as f64;
    let max = shards.iter().map(|s| s.pushes).max().unwrap_or(0) as f64;
    max / mean
}

/// Run this harness (the body of the `parallelism_sweep` binary).
pub fn run() {
    let scale = runner::env_scale(40_000);
    let seed = runner::env_seed();
    println!(
        "== Parallelism sweep: virtual-time scheduler, Thai dataset (n={scale}, seed={seed}) ==\n"
    );

    let ws = GeneratorConfig::thai_like()
        .scaled(scale)
        .build_shared(seed);
    let engine = CrawlEngine::new(&ws, EngineConfig::default());
    let oracle = OracleClassifier::target(ws.target_language());
    let total_relevant = ws.total_relevant() as u64;

    let mut rows: Vec<SweepRow> = Vec::new();
    for &(slots, gap, spread) in CONFIGS {
        let sched = SchedConfig {
            slots,
            shards: 0, // one shard per slot
            politeness_gap: gap,
            politeness_spread: spread,
        };
        let mut metrics = MetricsSampler::new();
        let mut stats = SchedStatsSink::new();
        let mut scratch = langcrawl_core::engine::EngineScratch::new();
        let (outcome, shards) = {
            let mut sinks: [&mut dyn EventSink; 2] = [&mut metrics, &mut stats];
            engine.run_scheduled_full(
                &sched,
                &mut SimpleStrategy::soft(),
                &oracle,
                &mut sinks,
                &mut scratch,
            )
        };
        rows.push(SweepRow {
            slots,
            gap,
            spread,
            outcome,
            stats,
            shards,
            samples: metrics.into_samples(),
        });
    }

    let serial_ticks = rows[0].outcome.ticks;
    println!(
        "{:>5} {:>4} {:>6} {:>9} {:>8} {:>10} {:>9} {:>9} {:>10}",
        "K", "gap", "spread", "ticks", "speedup", "idle_ticks", "waits", "handoffs", "imbalance"
    );
    let mut summary = String::from(
        "slots,gap,spread,ticks,speedup,idle_slot_ticks,politeness_waits,handoffs,\
         shard_imbalance,crawled,relevant_crawled,max_queue,harvest,coverage\n",
    );
    let mut curves =
        String::from("slots,gap,spread,crawled,relevant,queue_size,harvest,coverage\n");
    for row in &rows {
        let speedup = serial_ticks as f64 / row.outcome.ticks as f64;
        let imb = imbalance(&row.shards);
        let harvest = row.outcome.relevant_crawled as f64 / row.outcome.crawled.max(1) as f64;
        let coverage = row.outcome.relevant_crawled as f64 / total_relevant.max(1) as f64;
        println!(
            "{:>5} {:>4} {:>6} {:>9} {:>7.2}x {:>10} {:>9} {:>9} {:>10.3}",
            row.slots,
            row.gap,
            row.spread,
            row.outcome.ticks,
            speedup,
            row.stats.idle_slot_ticks,
            row.stats.politeness_waits,
            row.stats.crossed_links,
            imb,
        );
        summary.push_str(&format!(
            "{},{},{},{},{:.4},{},{},{},{:.4},{},{},{},{:.6},{:.6}\n",
            row.slots,
            row.gap,
            row.spread,
            row.outcome.ticks,
            speedup,
            row.stats.idle_slot_ticks,
            row.stats.politeness_waits,
            row.stats.crossed_links,
            imb,
            row.outcome.crawled,
            row.outcome.relevant_crawled,
            row.outcome.max_pending,
            harvest,
            coverage,
        ));
        for s in &row.samples {
            curves.push_str(&format!(
                "{},{},{},{},{},{},{:.6},{:.6}\n",
                row.slots,
                row.gap,
                row.spread,
                s.crawled,
                s.relevant,
                s.queue_size,
                s.relevant as f64 / s.crawled.max(1) as f64,
                s.relevant as f64 / total_relevant.max(1) as f64,
            ));
        }
    }

    let dir = runner::results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        for (name, body) in [
            ("parallelism_sweep.csv", &summary),
            ("parallelism_sweep_curves.csv", &curves),
        ] {
            let path = dir.join(name);
            match std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes())) {
                Ok(()) => println!("\n  [csv] {}", path.display()),
                Err(e) => eprintln!("\n  [csv] cannot write {name}: {e}"),
            }
        }
    }

    // Shape checks.
    let serial = &rows[0];
    println!(
        "\nK=1 makespan is one tick per attempt (legacy clock)     [{}]",
        ok(serial.outcome.ticks == serial.outcome.attempts)
    );
    let same_work = rows.iter().all(|r| {
        r.outcome.crawled == serial.outcome.crawled
            && r.outcome.relevant_crawled == serial.outcome.relevant_crawled
    });
    println!(
        "every schedule crawls the same pages and harvest        [{}]",
        ok(same_work)
    );
    let shrink = rows
        .windows(2)
        .take(2) // the gap-0 prefix: K = 1 → 4 → 16
        .all(|w| w[1].outcome.ticks < w[0].outcome.ticks);
    println!(
        "makespan shrinks with K at zero politeness              [{}]",
        ok(shrink)
    );
    let k16 = rows.iter().find(|r| r.slots == 16 && r.gap == 0);
    let polite = rows.iter().find(|r| r.slots == 16 && r.gap > 0);
    let stretched = match (k16, polite) {
        (Some(free), Some(p)) => {
            p.outcome.ticks > free.outcome.ticks && p.stats.politeness_waits > 0
        }
        _ => false,
    };
    println!(
        "politeness gaps stretch the schedule and park hosts     [{}]",
        ok(stretched)
    );
    let handoffs_flow = rows
        .iter()
        .filter(|r| r.slots > 1)
        .all(|r| r.stats.crossed_links > 0);
    println!(
        "cross-shard discovery handoffs flow whenever shards > 1 [{}]",
        ok(handoffs_flow)
    );
}
