//! Ablation E — importance-ordered crawling (Cho et al., the paper's
//! reference \[3\]) vs language-focused crawling.
//!
//! §2 of the paper motivates focused crawling against general-purpose
//! strategies; reference \[3\] is the strongest of those: order the
//! frontier by backlink count or online PageRank. Both chase popularity,
//! not language, so on an archiving mission they should sit between
//! breadth-first and the focused strategies — popular pages are
//! disproportionately on large (often relevant) hosts, but nothing stops
//! the crawl from pouring effort into popular *foreign* hubs.

use crate::figures::ok;
use crate::{write_csv_reporting, Experiment};
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{BacklinkCount, BreadthFirst, OnlinePageRank, SimpleStrategy};
use langcrawl_webgraph::GeneratorConfig;

/// Run this harness (the body of the `ablation_ordering` binary).
pub fn run() {
    let run = Experiment::new(
        "ordering",
        "Ablation E: URL-ordering baselines vs focused crawling, Thai",
        GeneratorConfig::thai_like(),
    )
    .scale(80_000)
    .sim_config(SimConfig::default().with_url_filter())
    .strategy("breadth-first", |_| Box::new(BreadthFirst::new()))
    .strategy("backlink-ordered", |_| Box::new(BacklinkCount::new()))
    .strategy("pagerank-ordered", |_| Box::new(OnlinePageRank::new()))
    .strategy("soft-focused", |_| Box::new(SimpleStrategy::soft()))
    .run();

    let early = run.early(6);
    println!(
        "{:<26} {:>12} {:>10} {:>10} {:>12}",
        "strategy", "harvest@1/6", "harvest", "coverage", "max queue"
    );
    for r in &run.reports {
        println!(
            "{:<26} {:>11.1}% {:>9.1}% {:>9.1}% {:>12}",
            r.strategy,
            100.0 * r.harvest_at(early),
            100.0 * r.final_harvest(),
            100.0 * r.final_coverage(),
            r.max_queue
        );
        write_csv_reporting(
            r,
            &format!("ordering_{}", r.strategy.replace([' ', '(', ')'], "_")),
        );
    }

    let bf = run.reports[0].harvest_at(early);
    let soft = run.reports[3].harvest_at(early);
    let best_ordered = run.reports[1]
        .harvest_at(early)
        .max(run.reports[2].harvest_at(early));
    println!("\nShape checks (paper §2's motivation, quantified):");
    println!(
        "  language focus beats importance ordering: soft {:.1}% vs best-ordered {:.1}%  [{}]",
        100.0 * soft,
        100.0 * best_ordered,
        ok(soft > best_ordered)
    );
    println!(
        "  importance ordering is not *worse* than blind BFS for archiving: \
         best-ordered {:.1}% vs bf {:.1}%",
        100.0 * best_ordered,
        100.0 * bf
    );
    println!(
        "  all language-blind strategies still cover everything eventually: {:?}  [{}]",
        run.reports[..3]
            .iter()
            .map(|r| format!("{:.2}", r.final_coverage()))
            .collect::<Vec<_>>(),
        ok(run.reports[..3].iter().all(|r| r.final_coverage() > 0.99))
    );
}
