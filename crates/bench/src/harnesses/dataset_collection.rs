//! Dataset-collection experiment — why the paper's Japanese dataset was
//! 71% relevant.
//!
//! §5.1 notes the Japanese log was itself acquired with "a combination
//! of hard focused with limited distance strategies", and §5.2.1
//! concludes the dataset "is already kept sufficiently relevant" — its
//! high specificity is an artifact of how it was *collected*, which is
//! exactly why the paper's later experiments use the Thai dataset.
//!
//! This harness makes that argument quantitative. It builds a "world"
//! web space whose true relevance ratio is low (a Thai-like 35%), then
//! collects datasets from it with the paper's two collection crawls
//! (hard+limited for Japanese, soft+limited for Thai) and with plain
//! breadth-first, and measures the **relevance ratio of each collected
//! snapshot**. Expected: the hard+limited snapshot is far more relevant
//! than the world (the Japanese situation); the soft+limited snapshot
//! stays close to the world's ratio (the Thai situation).

use crate::figures::ok;
use crate::Experiment;
use langcrawl_core::metrics::CrawlReport;
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{BreadthFirst, CombinedStrategy};
use langcrawl_webgraph::{GeneratorConfig, WebSpace};

/// Run this harness (the body of the `dataset_collection` binary).
pub fn run() {
    // The "real web" around the target language: low specificity. Visit
    // recording is on so each snapshot can be re-judged page by page.
    let run = Experiment::new(
        "collect",
        "Dataset collection: how the crawl strategy shapes the dataset",
        GeneratorConfig::thai_like(),
    )
    .scale(120_000)
    .sim_config(
        SimConfig::default()
            .with_url_filter()
            .with_visit_recording(),
    )
    .strategy("bf", |_| Box::new(BreadthFirst::new()))
    .strategy("hard+limited-0", |_| {
        Box::new(CombinedStrategy::hard_limited(0))
    })
    .strategy("hard+limited-1", |_| {
        Box::new(CombinedStrategy::hard_limited(1))
    })
    .strategy("hard+limited-2", |_| {
        Box::new(CombinedStrategy::hard_limited(2))
    })
    .strategy("soft+limited-4", |_| {
        Box::new(CombinedStrategy::soft_limited(4))
    })
    .run();

    let world = &run.ws;
    let world_ratio = world.total_relevant() as f64 / world.total_ok_html() as f64;
    println!(
        "world: {} URLs, {} OK HTML pages, true relevance ratio {:.1}%\n",
        world.num_pages(),
        world.total_ok_html(),
        100.0 * world_ratio
    );

    let snapshot_ratio = |r: &CrawlReport, world: &WebSpace| -> f64 {
        let mut html = 0u64;
        let mut relevant = 0u64;
        for &p in &r.visited {
            if world.meta(p).is_ok_html() {
                html += 1;
                if world.is_relevant(p) {
                    relevant += 1;
                }
            }
        }
        relevant as f64 / html.max(1) as f64
    };

    println!(
        "{:<24} {:>10} {:>12} {:>18}",
        "collection crawl", "crawled", "HTML pages", "snapshot relevance"
    );
    let mut ratios = Vec::new();
    for r in &run.reports {
        let html = r
            .visited
            .iter()
            .filter(|&&p| world.meta(p).is_ok_html())
            .count();
        let ratio = snapshot_ratio(r, world);
        println!(
            "{:<24} {:>10} {:>12} {:>17.1}%",
            r.strategy,
            r.crawled,
            html,
            100.0 * ratio
        );
        ratios.push(ratio);
    }
    let [bf_ratio, hard0_ratio, hard_ratio, hard2_ratio, soft_ratio] = ratios[..] else {
        unreachable!()
    };

    println!("\nShape checks (paper §5.1 / §5.2.1):");
    println!(
        "  breadth-first snapshot mirrors the world: {:.1}% vs {:.1}%  [{}]",
        100.0 * bf_ratio,
        100.0 * world_ratio,
        ok((bf_ratio - world_ratio).abs() < 0.03)
    );
    println!(
        "  the tighter the collection crawl, the more specific the dataset: \
         {:.1}% (N=0) > {:.1}% (N=1) > {:.1}% (N=2)  [{}]",
        100.0 * hard0_ratio,
        100.0 * hard_ratio,
        100.0 * hard2_ratio,
        ok(hard0_ratio > hard_ratio && hard_ratio > hard2_ratio)
    );
    println!(
        "  a strict collection crawl manufactures the 'Japanese dataset' situation: \
         {:.1}% snapshot relevance from a {:.1}% world (paper: 71%)  [{}]",
        100.0 * hard0_ratio,
        100.0 * world_ratio,
        ok(hard0_ratio > 0.60)
    );
    println!(
        "  a tunneling collection crawl keeps the 'Thai dataset' situation: \
         {:.1}% ≈ world  [{}]",
        100.0 * soft_ratio,
        ok((soft_ratio - world_ratio).abs() < 0.06)
    );
    println!(
        "\n=> 'datasets with high degree of language specificity are not suitable for \
         evaluating language specific web crawling strategies' (§5.1) — and the \
         collection crawl is what sets that specificity."
    );
}
