//! Table 3 — characteristics of the experimental datasets, regenerated
//! for the synthetic Thai-like and Japanese-like web spaces, plus the
//! structural reachability analysis behind the coverage curves.

use crate::figures::ok;
use crate::runner;
use langcrawl_webgraph::stats::{
    reachable_all, reachable_limited, reachable_relevant_only, relevant_coverage,
};
use langcrawl_webgraph::{DatasetStats, GeneratorConfig};

/// Run this harness (the body of the `table3` binary).
pub fn run() {
    let seed = runner::env_seed();
    let thai = GeneratorConfig::thai_like().scaled(runner::env_scale(200_000));
    let japanese = GeneratorConfig::japanese_like().scaled(runner::env_scale(300_000));

    println!("== Table 3: Characteristics of experimental datasets ==");
    println!("(paper: Thai 1,467,643/2,419,301/3,886,944 = 35% relevant;");
    println!("        Japanese 67,983,623/27,200,355/95,183,978 = 71% relevant;");
    println!("  ours reproduces the ratios at reduced scale)\n");

    println!("{:<28} {:>14} {:>14}", "", "Thai", "Japanese");
    let mut rows: Vec<(String, String, String)> = Vec::new();
    let mut spaces = Vec::new();
    for cfg in [&thai, &japanese] {
        let ws = cfg.build_shared(seed);
        spaces.push(ws);
    }
    let s_th = DatasetStats::compute(&spaces[0]);
    let s_jp = DatasetStats::compute(&spaces[1]);
    for (name, a, b) in [
        (
            "Relevant HTML pages",
            s_th.relevant_html,
            s_jp.relevant_html,
        ),
        (
            "Irrelevant HTML pages",
            s_th.irrelevant_html,
            s_jp.irrelevant_html,
        ),
        ("Total HTML pages", s_th.total_html, s_jp.total_html),
        ("Total URLs", s_th.total_urls, s_jp.total_urls),
        ("Hosts", s_th.hosts, s_jp.hosts),
        ("Links", s_th.edges, s_jp.edges),
    ] {
        rows.push((name.to_string(), group(a), group(b)));
    }
    rows.push((
        "Relevance ratio".into(),
        format!("{:.1}%", 100.0 * s_th.relevance_ratio),
        format!("{:.1}%", 100.0 * s_jp.relevance_ratio),
    ));
    for (name, a, b) in &rows {
        println!("{name:<28} {a:>14} {b:>14}");
    }

    println!("\nStructural reachability (what the crawl strategies can reach):");
    println!(
        "{:<34} {:>10} {:>10}",
        "relevant coverage of …", "Thai", "Japanese"
    );
    let line = |name: &str, f: &dyn Fn(&langcrawl_webgraph::WebSpace) -> f64| {
        println!(
            "{:<34} {:>9.1}% {:>9.1}%",
            name,
            100.0 * f(&spaces[0]),
            100.0 * f(&spaces[1])
        );
    };
    line("complete crawl (soft ceiling)", &|ws| {
        relevant_coverage(ws, &reachable_all(ws))
    });
    line("relevant-only paths (hard ceiling)", &|ws| {
        relevant_coverage(ws, &reachable_relevant_only(ws))
    });
    for n in 1..=4u8 {
        let label = format!("tunnel through <= {n} irrelevant");
        println!(
            "{:<34} {:>9.1}% {:>9.1}%",
            label,
            100.0 * relevant_coverage(&spaces[0], &reachable_limited(&spaces[0], n)),
            100.0 * relevant_coverage(&spaces[1], &reachable_limited(&spaces[1], n)),
        );
    }

    println!("\nShape checks (paper §5.1):");
    println!(
        "  Thai relevance ratio ≈ 35%:      {:.1}%  [{}]",
        100.0 * s_th.relevance_ratio,
        ok((s_th.relevance_ratio - 0.35).abs() < 0.05)
    );
    println!(
        "  Japanese relevance ratio ≈ 71%:  {:.1}%  [{}]",
        100.0 * s_jp.relevance_ratio,
        ok((s_jp.relevance_ratio - 0.71).abs() < 0.06)
    );
    println!(
        "  Japanese more language-specific: [{}]",
        ok(s_jp.relevance_ratio > s_th.relevance_ratio)
    );
}

fn group(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}
