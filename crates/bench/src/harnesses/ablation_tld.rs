//! Ablation F — national-domain scoping vs language-specific crawling.
//!
//! Before language-specific crawling, national web archives scoped their
//! crawls by ccTLD (everything under `.th`, nothing else). The paper's
//! implicit claim is that *language*, not *domain*, is the right
//! archiving criterion. This harness puts the two policies on the same
//! Thai-like space:
//!
//! * the TLD crawl needs no classifier and wastes nothing on foreign
//!   hosts — its harvest should be the highest of all;
//! * but it can neither reach Thai content hosted abroad (the `leak`
//!   pages) nor pass through foreign gateway chains (the islands), so
//!   its *coverage ceiling is structural* and no parameter can raise it;
//! * language-focused crawling with tunneling (the paper's conclusion)
//!   beats that ceiling at a modest harvest cost.

use crate::figures::ok;
use crate::{write_csv_reporting, Experiment};
use langcrawl_core::sim::SimConfig;
use langcrawl_core::strategy::{LimitedDistanceStrategy, SimpleStrategy, TldScopeStrategy};
use langcrawl_webgraph::GeneratorConfig;

/// Run this harness (the body of the `ablation_tld` binary).
pub fn run() {
    let run = Experiment::new(
        "tld",
        "Ablation F: ccTLD scoping vs language focus, Thai dataset",
        GeneratorConfig::thai_like(),
    )
    .scale(80_000)
    .sim_config(SimConfig::default().with_url_filter())
    .strategy("tld-scope", |ws| {
        Box::new(TldScopeStrategy::new(ws, &["th"]))
    })
    .strategy("hard-focused", |_| Box::new(SimpleStrategy::hard()))
    .strategy("prior-limited-4", |_| {
        Box::new(LimitedDistanceStrategy::prioritized(4))
    })
    .strategy("soft-focused", |_| Box::new(SimpleStrategy::soft()))
    .run();

    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>12}",
        "strategy", "crawled", "harvest", "coverage", "max queue"
    );
    for r in &run.reports {
        println!(
            "{:<26} {:>10} {:>9.1}% {:>9.1}% {:>12}",
            r.strategy,
            r.crawled,
            100.0 * r.final_harvest(),
            100.0 * r.final_coverage(),
            r.max_queue
        );
        write_csv_reporting(
            r,
            &format!("tld_{}", r.strategy.replace([' ', '=', '.'], "_")),
        );
    }

    let tld = &run.reports[0];
    let hard = &run.reports[1];
    let limited = &run.reports[2];
    println!("\nShape checks (national-archive policy comparison):");
    println!(
        "  TLD scoping yields the best harvest (no foreign fetches at all): \
         {:.1}% vs hard {:.1}%  [{}]",
        100.0 * tld.final_harvest(),
        100.0 * hard.final_harvest(),
        ok(tld.final_harvest() >= hard.final_harvest())
    );
    println!(
        "  …but its coverage ceiling is structural: {:.1}% (misses expatriate \
         pages and island content behind foreign gateways)",
        100.0 * tld.final_coverage()
    );
    println!(
        "  language focus with tunneling beats the TLD ceiling: {:.1}% vs {:.1}%  [{}]",
        100.0 * limited.final_coverage(),
        100.0 * tld.final_coverage(),
        ok(limited.final_coverage() > tld.final_coverage())
    );
    println!(
        "\n=> the paper's premise quantified: a national *language* archive \
         cannot be built by domain scoping alone — the borderless part of the \
         national web is exactly what it misses."
    );
}
