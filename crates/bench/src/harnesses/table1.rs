//! Table 1 — languages and their corresponding character encoding
//! schemes, plus the alias table the META classifier accepts and a live
//! round-trip of the detector on each encoding.

use crate::figures::ok;
use langcrawl_charset::encode::{
    encode_japanese, encode_thai, japanese_demo_tokens, thai_demo_tokens,
};
use langcrawl_charset::{charset_from_label, detect, Charset, Language};

/// Run this harness (the body of the `table1` binary).
pub fn run() {
    println!("== Table 1: Languages and their corresponding character encoding schemes ==\n");
    println!(
        "{:<12} {:<40}",
        "Language", "Character Encoding Scheme (charset name)"
    );
    println!("{:-<12} {:-<40}", "", "");
    for lang in [Language::Japanese, Language::Thai] {
        let names: Vec<&str> = lang.charsets().iter().map(|c| c.label()).collect();
        println!("{:<12} {:<40}", lang.name(), names.join(", "));
    }

    println!("\nAlias resolution (META classifier path):");
    for (alias, expect) in [
        ("EUC-JP", Charset::EucJp),
        ("x-euc-jp", Charset::EucJp),
        ("Shift_JIS", Charset::ShiftJis),
        ("x-sjis", Charset::ShiftJis),
        ("Windows-31J", Charset::ShiftJis),
        ("iso-2022-jp", Charset::Iso2022Jp),
        ("TIS-620", Charset::Tis620),
        ("tis620.2533", Charset::Tis620),
        ("Windows-874", Charset::Windows874),
        ("ISO-8859-11", Charset::Iso885911),
    ] {
        let got = charset_from_label(alias);
        println!(
            "  {:<16} -> {:<14} language={:<10} [{}]",
            alias,
            got.label(),
            got.language().map_or("-", |l| l.name()),
            ok(got == expect)
        );
    }

    println!("\nDetector round-trip (encode demo text, detect, map to language):");
    let ja = japanese_demo_tokens();
    let ja: Vec<_> = ja.iter().cycle().take(ja.len() * 8).copied().collect();
    for cs in [
        Charset::EucJp,
        Charset::ShiftJis,
        Charset::Iso2022Jp,
        Charset::Utf8,
    ] {
        let d = detect(&encode_japanese(&ja, cs));
        println!(
            "  Japanese text as {:<12} -> detected {:<12} language={:<10} [{}]",
            cs.label(),
            d.charset.label(),
            d.language().map_or("-", |l| l.name()),
            ok(d.language() == Some(Language::Japanese))
        );
    }
    let th = thai_demo_tokens();
    let th: Vec<_> = th.iter().cycle().take(th.len() * 8).copied().collect();
    for cs in [Charset::Tis620, Charset::Utf8] {
        let d = detect(&encode_thai(&th, cs));
        println!(
            "  Thai text as {:<16} -> detected {:<12} language={:<10} [{}]",
            cs.label(),
            d.charset.label(),
            d.language().map_or("-", |l| l.name()),
            ok(d.language() == Some(Language::Thai))
        );
    }
}
