//! # langcrawl-bench — experiment harness
//!
//! Shared machinery for the binaries that regenerate every table and
//! figure of the paper (see DESIGN.md §4 for the experiment index) and
//! for the self-contained microbenches.
//!
//! Each figure binary declares an [`experiment::Experiment`] — preset +
//! scale + seed + strategy set + classifier + output prefix — and:
//! 1. builds the preset web space (size overridable with
//!    `LANGCRAWL_SCALE=<urls>`; seed with `LANGCRAWL_SEED=<u64>`),
//! 2. runs the paper's strategies (in parallel, one thread each — the
//!    web space is immutable and shared),
//! 3. prints the paper's series as aligned tables plus an ASCII plot,
//!    and writes machine-readable CSVs under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod experiment;
pub mod figures;
pub mod gnuplot;
pub mod harnesses;
pub mod runner;

pub use chart::AsciiChart;
pub use experiment::{Experiment, ExperimentRun};
pub use runner::{
    default_scale, env_scale, env_seed, run_parallel, write_csv, write_csv_reporting,
    StrategyFactory,
};
