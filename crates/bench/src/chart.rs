//! Terminal ASCII charts — so the figure binaries actually show figures.
//!
//! Renders multiple series into a fixed character grid with axis labels,
//! one glyph per curve, mirroring the gnuplot figures of the paper close
//! enough to eyeball shapes (crossovers, plateaus, ceilings).

/// One plotted series: glyph, legend name, (x, y) points.
type Series = (char, String, Vec<(f64, f64)>);

/// A multi-series ASCII line chart.
#[derive(Debug)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    title: String,
    y_label: String,
    series: Vec<Series>,
    y_max_hint: Option<f64>,
}

/// Glyphs assigned to successive series.
const GLYPHS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&'];

impl AsciiChart {
    /// A chart with the given title and y-axis label.
    pub fn new(title: &str, y_label: &str) -> Self {
        AsciiChart {
            width: 72,
            height: 20,
            title: title.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
            y_max_hint: None,
        }
    }

    /// Fix the y-axis maximum (e.g. 100 for percentages).
    pub fn y_max(mut self, m: f64) -> Self {
        self.y_max_hint = Some(m);
        self
    }

    /// Add a named series of (x, y) points.
    pub fn series(&mut self, name: &str, points: Vec<(f64, f64)>) -> &mut Self {
        let glyph = GLYPHS[self.series.len() % GLYPHS.len()];
        self.series.push((glyph, name.to_string(), points));
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("  {}\n", self.title));
        let x_max = self
            .series
            .iter()
            .flat_map(|(_, _, pts)| pts.iter().map(|p| p.0))
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let y_max = self.y_max_hint.unwrap_or_else(|| {
            self.series
                .iter()
                .flat_map(|(_, _, pts)| pts.iter().map(|p| p.1))
                .fold(0.0f64, f64::max)
                .max(1e-12)
        });

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (glyph, _, pts) in &self.series {
            for &(x, y) in pts {
                let cx = ((x / x_max) * (self.width - 1) as f64).round() as usize;
                let cy = ((y / y_max) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy.min(self.height - 1);
                let col = cx.min(self.width - 1);
                grid[row][col] = *glyph;
            }
        }
        for (i, row) in grid.iter().enumerate() {
            let y_val = y_max * (self.height - 1 - i) as f64 / (self.height - 1) as f64;
            let label = if i % 5 == 0 || i == self.height - 1 {
                format!("{y_val:>9.1}")
            } else {
                " ".repeat(9)
            };
            out.push_str(&format!("{label} |{}\n", row.iter().collect::<String>()));
        }
        out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(self.width)));
        out.push_str(&format!(
            "{:>9}  0{:>width$.0}\n",
            self.y_label,
            x_max,
            width = self.width - 1
        ));
        out.push_str("  legend:");
        for (glyph, name, _) in &self.series {
            out.push_str(&format!("  {glyph} {name}"));
        }
        out.push('\n');
        out
    }

    /// Render and print.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_series_glyphs() {
        let mut c = AsciiChart::new("t", "y");
        c.series("a", vec![(0.0, 0.0), (10.0, 5.0)]);
        c.series("b", vec![(0.0, 5.0), (10.0, 0.0)]);
        let s = c.render();
        assert!(s.contains('*'));
        assert!(s.contains('+'));
        assert!(s.contains("legend:"));
        assert!(s.contains("a"));
    }

    #[test]
    fn y_max_hint_scales_axis() {
        let mut c = AsciiChart::new("t", "y").y_max(100.0);
        c.series("a", vec![(1.0, 50.0)]);
        let s = c.render();
        assert!(s.contains("100.0"), "{s}");
    }

    #[test]
    fn empty_chart_does_not_panic() {
        let c = AsciiChart::new("empty", "y");
        let _ = c.render();
    }

    #[test]
    fn line_count_is_bounded() {
        let mut c = AsciiChart::new("t", "y");
        c.series("a", (0..100).map(|i| (i as f64, (i % 7) as f64)).collect());
        let s = c.render();
        assert!(s.lines().count() < 28);
    }
}
