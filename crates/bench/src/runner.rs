//! Parallel experiment execution and result output.

use langcrawl_core::classifier::Classifier;
use langcrawl_core::metrics::CrawlReport;
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::Strategy;
use langcrawl_webgraph::WebSpace;
use std::io::Write;
use std::path::Path;

/// A named constructor for a strategy (strategies are stateful, so each
/// run builds a fresh one).
pub type StrategyFactory<'a> = Box<dyn Fn(&WebSpace) -> Box<dyn Strategy> + Sync + 'a>;

/// Read the experiment scale from `LANGCRAWL_SCALE`, defaulting to the
/// preset's own size when unset or unparsable.
pub fn env_scale(default: u32) -> u32 {
    std::env::var("LANGCRAWL_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read the generator seed from `LANGCRAWL_SEED` (default 42).
pub fn env_seed() -> u64 {
    std::env::var("LANGCRAWL_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// The default figure-run scale (URLs) when the preset doesn't override.
pub fn default_scale() -> u32 {
    env_scale(200_000)
}

/// Run several strategies over one web space concurrently (scoped
/// threads; the space is shared immutably) and return the reports in
/// input order.
pub fn run_parallel(
    ws: &WebSpace,
    factories: &[(&str, StrategyFactory<'_>)],
    classifier: &(dyn Classifier + Sync),
    config: &SimConfig,
) -> Vec<CrawlReport> {
    let mut out: Vec<Option<CrawlReport>> = Vec::new();
    out.resize_with(factories.len(), || None);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (slot, (_, factory)) in out.iter_mut().zip(factories.iter()) {
            handles.push(scope.spawn(move |_| {
                let mut strategy = factory(ws);
                let mut sim = Simulator::new(ws, config.clone());
                *slot = Some(sim.run(strategy.as_mut(), classifier));
            }));
        }
        for h in handles {
            h.join().expect("experiment thread panicked");
        }
    })
    .expect("experiment scope");
    out.into_iter().map(|r| r.expect("report filled")).collect()
}

/// Write a report's series CSV under `results/` (created on demand);
/// prints the path so terminal users can find it.
pub fn write_csv(report: &CrawlReport, name: &str) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return; // read-only checkout: printing the tables is enough
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            if report.write_csv(&mut f).and_then(|_| f.flush()).is_ok() {
                println!("  [csv] {}", path.display());
            }
        }
        Err(e) => eprintln!("  [csv] cannot write {}: {e}", path.display()),
    }
}

/// Print an aligned multi-curve table: one row per x step, one column
/// per report; `value` extracts the plotted quantity at each sample.
pub fn print_table(
    title: &str,
    reports: &[CrawlReport],
    rows: usize,
    value: impl Fn(&CrawlReport, usize) -> Option<f64>,
) {
    println!("\n{title}");
    print!("{:>12}", "crawled");
    for r in reports {
        print!(" {:>26}", truncate(&r.strategy, 26));
    }
    println!();
    let max_crawled = reports.iter().map(|r| r.crawled).max().unwrap_or(0);
    for i in 0..rows {
        let x = max_crawled * (i as u64 + 1) / rows as u64;
        print!("{x:>12}");
        for r in reports {
            // Nearest sample at or before x.
            let idx = r.samples.partition_point(|s| s.crawled <= x);
            let v = idx.checked_sub(1).and_then(|j| value(r, j));
            match v {
                Some(v) => print!(" {v:>26.4}"),
                None => print!(" {:>26}", "-"),
            }
        }
        println!();
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrawl_core::classifier::OracleClassifier;
    use langcrawl_core::strategy::{BreadthFirst, SimpleStrategy};
    use langcrawl_webgraph::GeneratorConfig;

    #[test]
    fn parallel_runs_match_sequential() {
        let ws = GeneratorConfig::thai_like().scaled(3_000).build(2);
        let oracle = OracleClassifier::target(ws.target_language());
        let factories: Vec<(&str, StrategyFactory)> = vec![
            ("bf", Box::new(|_: &WebSpace| Box::new(BreadthFirst::new()) as Box<dyn Strategy>)),
            ("soft", Box::new(|_: &WebSpace| Box::new(SimpleStrategy::soft()) as Box<dyn Strategy>)),
        ];
        let reports = run_parallel(&ws, &factories, &oracle, &SimConfig::default());
        assert_eq!(reports.len(), 2);
        // Sequential reference.
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let seq = sim.run(&mut BreadthFirst::new(), &oracle);
        assert_eq!(reports[0].samples, seq.samples);
        assert_eq!(reports[0].crawled, seq.crawled);
    }

    #[test]
    fn env_helpers_default() {
        // (Env vars unset in the test harness.)
        assert_eq!(env_scale(123), 123);
        assert_eq!(env_seed(), 42);
    }
}
