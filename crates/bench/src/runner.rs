//! Parallel experiment execution and result output.

use langcrawl_core::classifier::Classifier;
use langcrawl_core::metrics::CrawlReport;
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::Strategy;
use langcrawl_webgraph::parallel::effective_threads;
use langcrawl_webgraph::WebSpace;
use std::io::{self, Write};
use std::path::PathBuf;

/// A named constructor for a strategy (strategies are stateful, so each
/// run builds a fresh one).
pub type StrategyFactory<'a> = Box<dyn Fn(&WebSpace) -> Box<dyn Strategy> + Sync + 'a>;

/// Read the experiment scale from `LANGCRAWL_SCALE`, defaulting to the
/// preset's own size when unset or unparsable.
pub fn env_scale(default: u32) -> u32 {
    std::env::var("LANGCRAWL_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read the generator seed from `LANGCRAWL_SEED` (default 42).
pub fn env_seed() -> u64 {
    std::env::var("LANGCRAWL_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// The default figure-run scale (URLs) when the preset doesn't override.
pub fn default_scale() -> u32 {
    env_scale(200_000)
}

/// Run several strategies over one web space concurrently (scoped
/// threads; the space is shared immutably) and return the reports in
/// input order.
///
/// The worker pool is capped at [`effective_threads`] (the
/// `LANGCRAWL_THREADS` knob, default: available parallelism) — figure
/// harnesses that sweep dozens of strategy variants no longer spawn one
/// unbounded thread each. Workers claim strategies off a shared atomic
/// cursor, so a long-running strategy doesn't idle the rest of the pool.
///
/// Panics if any strategy run panics, naming the strategy (its label
/// from `factories`) and forwarding the panic message.
pub fn run_parallel(
    ws: &WebSpace,
    factories: &[(&str, StrategyFactory<'_>)],
    classifier: &(dyn Classifier + Sync),
    config: &SimConfig,
) -> Vec<CrawlReport> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let workers = effective_threads().min(factories.len()).max(1);
    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Vec<(usize, Result<CrawlReport, String>)>> = Vec::new();
    std::thread::scope(|scope| {
        let cursor = &cursor;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some((name, factory)) = factories.get(i) else {
                            return done;
                        };
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let mut strategy = factory(ws);
                            let mut sim = Simulator::new(ws, config.clone());
                            sim.run(strategy.as_mut(), classifier)
                        }));
                        done.push((
                            i,
                            run.map_err(|payload| {
                                let msg = payload
                                    .downcast_ref::<&str>()
                                    .map(|s| s.to_string())
                                    .or_else(|| payload.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "non-string panic payload".into());
                                format!("strategy `{name}` panicked: {msg}")
                            }),
                        ));
                    }
                })
            })
            .collect();
        results = handles
            .into_iter()
            .map(|h| h.join().expect("experiment worker thread died"))
            .collect();
    });

    let mut out: Vec<Option<CrawlReport>> = Vec::new();
    out.resize_with(factories.len(), || None);
    for (i, run) in results.into_iter().flatten() {
        match run {
            Ok(report) => out[i] = Some(report),
            Err(msg) => panic!("{msg}"),
        }
    }
    out.into_iter().map(|r| r.expect("report filled")).collect()
}

/// The directory experiment artifacts (CSVs, gnuplot scripts) go to:
/// `LANGCRAWL_RESULTS_DIR` when set, else `results/` relative to the
/// cwd. The override is what lets figure binaries run from any working
/// directory (e.g. invoked by CI or an editor task from the repo root).
pub fn results_dir() -> PathBuf {
    std::env::var_os("LANGCRAWL_RESULTS_DIR")
        .map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

/// Write a report's series CSV under [`results_dir`] (created on
/// demand) and return the path written.
pub fn write_csv(report: &CrawlReport, name: &str) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    report.write_csv(&mut f)?;
    f.flush()?;
    Ok(path)
}

/// Write a report's CSV and print where it went — or why it didn't.
/// Figure binaries treat output as best-effort (a read-only checkout
/// still prints its tables) but the failure is always reported.
pub fn write_csv_reporting(report: &CrawlReport, name: &str) {
    match write_csv(report, name) {
        Ok(path) => println!("  [csv] {}", path.display()),
        Err(e) => eprintln!("  [csv] cannot write {name}.csv: {e}"),
    }
}

/// Print an aligned multi-curve table: one row per x step, one column
/// per report; `value` extracts the plotted quantity at each sample.
pub fn print_table(
    title: &str,
    reports: &[CrawlReport],
    rows: usize,
    value: impl Fn(&CrawlReport, usize) -> Option<f64>,
) {
    println!("\n{title}");
    print!("{:>12}", "crawled");
    for r in reports {
        print!(" {:>26}", truncate(&r.strategy, 26));
    }
    println!();
    let max_crawled = reports.iter().map(|r| r.crawled).max().unwrap_or(0);
    for i in 0..rows {
        let x = max_crawled * (i as u64 + 1) / rows as u64;
        print!("{x:>12}");
        for r in reports {
            // Nearest sample at or before x.
            let idx = r.samples.partition_point(|s| s.crawled <= x);
            let v = idx.checked_sub(1).and_then(|j| value(r, j));
            match v {
                Some(v) => print!(" {v:>26.4}"),
                None => print!(" {:>26}", "-"),
            }
        }
        println!();
    }
}

/// Truncate to at most `n` bytes without splitting a UTF-8 sequence:
/// strategy names can be non-ASCII (e.g. Thai script), where a blind
/// `&s[..n]` panics on a char boundary.
fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        return s;
    }
    let mut end = n;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrawl_core::classifier::OracleClassifier;
    use langcrawl_core::strategy::{BreadthFirst, SimpleStrategy};
    use langcrawl_webgraph::GeneratorConfig;

    #[test]
    fn parallel_runs_match_sequential() {
        let ws = GeneratorConfig::thai_like().scaled(3_000).build(2);
        let oracle = OracleClassifier::target(ws.target_language());
        let factories: Vec<(&str, StrategyFactory)> = vec![
            (
                "bf",
                Box::new(|_: &WebSpace| Box::new(BreadthFirst::new()) as Box<dyn Strategy>),
            ),
            (
                "soft",
                Box::new(|_: &WebSpace| Box::new(SimpleStrategy::soft()) as Box<dyn Strategy>),
            ),
        ];
        let reports = run_parallel(&ws, &factories, &oracle, &SimConfig::default());
        assert_eq!(reports.len(), 2);
        // Sequential reference.
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let seq = sim.run(&mut BreadthFirst::new(), &oracle);
        assert_eq!(reports[0].samples, seq.samples);
        assert_eq!(reports[0].crawled, seq.crawled);
    }

    #[test]
    fn parallel_caps_workers_below_strategy_count() {
        // More strategies than any plausible core count: the chunked
        // queue must still produce every report, in input order.
        let ws = GeneratorConfig::thai_like().scaled(2_000).build(4);
        let oracle = OracleClassifier::target(ws.target_language());
        let names: Vec<String> = (0..40).map(|i| format!("bf{i}")).collect();
        let factories: Vec<(&str, StrategyFactory)> = names
            .iter()
            .map(|n| {
                (
                    n.as_str(),
                    Box::new(|_: &WebSpace| Box::new(BreadthFirst::new()) as Box<dyn Strategy>)
                        as StrategyFactory,
                )
            })
            .collect();
        let reports = run_parallel(&ws, &factories, &oracle, &SimConfig::default());
        assert_eq!(reports.len(), 40);
        assert!(reports.windows(2).all(|w| w[0].crawled == w[1].crawled));
    }

    #[test]
    fn panicking_strategy_is_named() {
        struct Exploding;
        impl Strategy for Exploding {
            fn name(&self) -> String {
                "exploding".into()
            }
            fn levels(&self) -> usize {
                1
            }
            fn admit(
                &mut self,
                _view: &langcrawl_core::strategy::PageView<'_>,
                _out: &mut Vec<langcrawl_core::queue::Entry>,
            ) {
                panic!("boom in admit");
            }
        }
        let ws = GeneratorConfig::thai_like().scaled(2_000).build(4);
        let oracle = OracleClassifier::target(ws.target_language());
        let factories: Vec<(&str, StrategyFactory)> = vec![
            (
                "fine",
                Box::new(|_: &WebSpace| Box::new(BreadthFirst::new()) as Box<dyn Strategy>),
            ),
            (
                "exploding-strategy",
                Box::new(|_: &WebSpace| Box::new(Exploding) as Box<dyn Strategy>),
            ),
        ];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_parallel(&ws, &factories, &oracle, &SimConfig::default())
        }))
        .expect_err("must propagate the panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("exploding-strategy") && msg.contains("boom in admit"),
            "panic must name the strategy: {msg}"
        );
    }

    #[test]
    fn env_helpers_default() {
        // (Env vars unset in the test harness.)
        assert_eq!(env_scale(123), 123);
        assert_eq!(env_seed(), 42);
    }

    #[test]
    fn truncate_is_char_boundary_safe() {
        // A Thai-script strategy name: every char is 3 bytes in UTF-8, so
        // most byte offsets fall inside a character.
        let thai = "กลยุทธ์เชิงลึกจำกัด"; // "limited-depth strategy"
        for n in 0..=thai.len() + 2 {
            let t = truncate(thai, n);
            assert!(t.len() <= n || thai.len() <= n);
            assert!(thai.starts_with(t));
        }
        assert_eq!(truncate("ascii-name", 5), "ascii");
        assert_eq!(truncate("short", 26), "short");
        // 26-byte table column on a Thai name must not panic (the
        // original regression: `&s[..26]` inside a 3-byte char).
        let col = truncate(thai, 26);
        assert!(col.len() <= 26);
        assert!(!col.is_empty());
    }

    #[test]
    fn write_csv_reports_path() {
        let ws = GeneratorConfig::thai_like().scaled(2_000).build(3);
        let oracle = OracleClassifier::target(ws.target_language());
        let mut sim = Simulator::new(&ws, SimConfig::default());
        let report = sim.run(&mut BreadthFirst::new(), &oracle);
        // `write_csv` resolves `results/` relative to the cwd; clean up
        // the artifact afterwards.
        let path = write_csv(&report, "unit_test_report").expect("csv written");
        assert!(path.ends_with("results/unit_test_report.csv"));
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.starts_with("crawled,"));
        std::fs::remove_file(&path).ok();

        // LANGCRAWL_RESULTS_DIR redirects the output. Same test (not a
        // separate one) so no concurrently-running test observes the
        // temporarily-set process env var.
        let dir = std::env::temp_dir().join("langcrawl_results_test");
        std::env::set_var("LANGCRAWL_RESULTS_DIR", &dir);
        let redirected = write_csv(&report, "unit_test_report");
        std::env::remove_var("LANGCRAWL_RESULTS_DIR");
        let redirected = redirected.expect("csv written to override dir");
        assert!(redirected.starts_with(&dir), "{}", redirected.display());
        assert!(redirected.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
