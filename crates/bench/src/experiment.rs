//! The shared experiment descriptor every figure binary shrinks onto.
//!
//! Each harness used to hand-roll the same sequence: read
//! `LANGCRAWL_SCALE`/`LANGCRAWL_SEED`, print a banner, build the preset
//! web space, construct a strategy set, run them in parallel under a
//! classifier, draw chart+table panels, and write CSVs + gnuplot
//! scripts under `results/`. [`Experiment`] is that sequence as data: a
//! preset, a default scale, a [`SimConfig`], a classifier factory and a
//! named strategy set. Binaries declare the descriptor, call
//! [`Experiment::run`], and keep only their figure-specific panels and
//! shape checks.

use crate::chart::AsciiChart;
use crate::gnuplot::{sanitize, write_script, PlotKind};
use crate::runner::{
    env_scale, env_seed, print_table, run_parallel, write_csv_reporting, StrategyFactory,
};
use langcrawl_core::classifier::{Classifier, MetaClassifier, OracleClassifier};
use langcrawl_core::metrics::CrawlReport;
use langcrawl_core::sim::SimConfig;
use langcrawl_webgraph::{GeneratorConfig, WebSpace};
use std::sync::Arc;

/// Builds the classifier once the web space exists (most classifiers
/// need the space's target language).
pub type ClassifierFactory = Box<dyn Fn(&WebSpace) -> Box<dyn Classifier + Sync>>;

/// A declarative experiment: preset + scale + seed + strategy set +
/// classifier + output prefix.
pub struct Experiment {
    title: String,
    file_prefix: &'static str,
    preset: GeneratorConfig,
    default_scale: u32,
    config: SimConfig,
    classifier: ClassifierFactory,
    strategies: Vec<(&'static str, StrategyFactory<'static>)>,
    banner: bool,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("title", &self.title)
            .field("file_prefix", &self.file_prefix)
            .field("default_scale", &self.default_scale)
            .field(
                "strategies",
                &self.strategies.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl Experiment {
    /// An experiment over `preset`, writing outputs as
    /// `results/<file_prefix>_*`. Scale defaults to the preset's figure
    /// default (200k URLs) and the classifier to the META-label path the
    /// paper used for Thai; override with the builder methods.
    pub fn new(file_prefix: &'static str, title: &str, preset: GeneratorConfig) -> Self {
        Experiment {
            title: title.to_string(),
            file_prefix,
            preset,
            default_scale: 200_000,
            config: SimConfig::default(),
            classifier: Box::new(|ws| Box::new(MetaClassifier::target(ws.target_language()))),
            strategies: Vec::new(),
            banner: true,
        }
    }

    /// Default space size (URLs) when `LANGCRAWL_SCALE` is unset.
    pub fn scale(mut self, default: u32) -> Self {
        self.default_scale = default;
        self
    }

    /// Simulation parameters for every strategy run.
    pub fn sim_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Layer a fault model over every strategy run (see
    /// [`SimConfig::fault_override`]) — for sensitivity sweeps reusing
    /// one generated space across fault rates.
    pub fn faults(mut self, fault: langcrawl_webgraph::FaultConfig) -> Self {
        self.config.fault_override = Some(fault);
        self
    }

    /// Replace the classifier (default: META charset label).
    pub fn classifier_with(
        mut self,
        f: impl Fn(&WebSpace) -> Box<dyn Classifier + Sync> + 'static,
    ) -> Self {
        self.classifier = Box::new(f);
        self
    }

    /// Judge relevance by ground truth (for ablations).
    pub fn oracle_classifier(self) -> Self {
        self.classifier_with(|ws| Box::new(OracleClassifier::target(ws.target_language())))
    }

    /// Add a strategy to the run set (each run builds a fresh instance).
    pub fn strategy(
        mut self,
        name: &'static str,
        f: impl Fn(&WebSpace) -> Box<dyn langcrawl_core::strategy::Strategy> + Sync + 'static,
    ) -> Self {
        self.strategies.push((name, Box::new(f)));
        self
    }

    /// Capture a crash-safe crawl snapshot every `every` ticks on each
    /// strategy run (see [`SimConfig::snapshot_every`]; forces the
    /// scheduler on). Files land in `LANGCRAWL_SNAPSHOT_DIR` when that
    /// variable is set; capture never alters the crawl.
    pub fn snapshot_every(mut self, every: u64) -> Self {
        self.config = self.config.clone().with_snapshot_every(every);
        self
    }

    /// Suppress the banner line — for sweep loops that run many
    /// experiment instances and print their own table.
    pub fn quiet(mut self) -> Self {
        self.banner = false;
        self
    }

    /// Build the space (honoring `LANGCRAWL_SCALE`/`LANGCRAWL_SEED`)
    /// through the process-wide [`langcrawl_webgraph::SpaceCache`], run
    /// every strategy in parallel, and return space + reports. Repeat
    /// runs over the same `(preset, scale, seed)` — in this experiment
    /// or any other in the same process — share one immutable space.
    pub fn run(&self) -> ExperimentRun {
        let scale = env_scale(self.default_scale);
        let seed = env_seed();
        if self.banner {
            println!("== {} (n={scale}, seed={seed}) ==", self.title);
        }
        let ws = self.preset.clone().scaled(scale).build_shared(seed);
        let reports = self.run_on(&ws);
        ExperimentRun {
            ws,
            reports,
            file_prefix: self.file_prefix,
        }
    }

    /// Run the strategy set on an already-built space (for harnesses
    /// that sweep generator knobs and build their spaces themselves).
    /// `LANGCRAWL_SNAPSHOT_EVERY` supplies a snapshot cadence for
    /// experiments that didn't set one — any figure binary becomes
    /// checkpointable from the environment alone (paired with
    /// `LANGCRAWL_SNAPSHOT_DIR` for the output directory).
    pub fn run_on(&self, ws: &WebSpace) -> Vec<CrawlReport> {
        let classifier = (self.classifier)(ws);
        let mut config = self.config.clone();
        if config.snapshot_every.is_none() {
            if let Some(every) = std::env::var("LANGCRAWL_SNAPSHOT_EVERY")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                config = config.with_snapshot_every(every);
            }
        }
        run_parallel(ws, &self.strategies, classifier.as_ref(), &config)
    }
}

/// A completed experiment: the space it ran on and one report per
/// strategy, plus the panel/output helpers the figure binaries share.
#[derive(Debug)]
pub struct ExperimentRun {
    /// The web space all strategies crawled (shared via the space
    /// cache — cloning the handle is cheap).
    pub ws: Arc<WebSpace>,
    /// One report per strategy, in declaration order.
    pub reports: Vec<CrawlReport>,
    file_prefix: &'static str,
}

impl ExperimentRun {
    /// `num_pages / denom` — the "early crawl" x-coordinate of the shape
    /// checks.
    pub fn early(&self, denom: u64) -> u64 {
        self.ws.num_pages() as u64 / denom
    }

    /// Draw one panel: an ASCII chart plus an aligned table of `value`
    /// (report, sample index) for every strategy.
    pub fn panel(
        &self,
        title: &str,
        unit: &str,
        y_max: Option<f64>,
        value: impl Fn(&CrawlReport, usize) -> f64,
    ) {
        let mut chart = AsciiChart::new(&format!("{title} vs pages crawled"), unit);
        if let Some(m) = y_max {
            chart = chart.y_max(m);
        }
        for r in &self.reports {
            chart.series(
                &r.strategy,
                r.samples
                    .iter()
                    .enumerate()
                    .map(|(j, s)| (s.crawled as f64, value(r, j)))
                    .collect(),
            );
        }
        chart.print();
        print_table(title, &self.reports, 16, |r, j| Some(value(r, j)));
    }

    /// Harvest-rate panel in percent.
    pub fn harvest_panel(&self, title: &str) {
        self.panel(title, "harvest%", Some(100.0), |r, j| {
            100.0 * r.samples[j].harvest_rate()
        });
    }

    /// Coverage panel in percent.
    pub fn coverage_panel(&self, title: &str) {
        self.panel(title, "cover%", Some(100.0), |r, j| {
            100.0 * r.coverage_at(&r.samples[j])
        });
    }

    /// Pending-URL (queue size) panel.
    pub fn queue_panel(&self, title: &str) {
        self.panel(title, "queue", None, |r, j| r.samples[j].queue_size as f64);
    }

    /// Print every report's summary row, write per-strategy CSVs under
    /// `results/<prefix>_<strategy>.csv` (failures are reported, not
    /// swallowed), and emit one gnuplot script per requested plot.
    pub fn emit(&self, plots: &[(PlotKind, &str)]) {
        println!();
        for r in &self.reports {
            println!("{}", r.summary_row());
            write_csv_reporting(
                r,
                &format!("{}_{}", self.file_prefix, sanitize(&r.strategy)),
            );
        }
        for &(kind, title) in plots {
            write_script(title, kind, &self.reports, self.file_prefix);
        }
    }

    /// The three-panel (queue / harvest / coverage) figure layout of
    /// Fig. 6 and Fig. 7, outputs included.
    pub fn three_panels(&self, fig: &str) {
        self.queue_panel(&format!("{fig}(a) URL queue size [URLs]"));
        self.harvest_panel(&format!("{fig}(b) Harvest Rate [%]"));
        self.coverage_panel(&format!("{fig}(c) Coverage [%]"));
        let q = format!("{fig}(a) URL queue size");
        let h = format!("{fig}(b) Harvest Rate");
        let c = format!("{fig}(c) Coverage");
        self.emit(&[
            (PlotKind::QueueSize, q.as_str()),
            (PlotKind::Harvest, h.as_str()),
            (PlotKind::Coverage, c.as_str()),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrawl_core::strategy::{BreadthFirst, SimpleStrategy};

    fn tiny() -> Experiment {
        Experiment::new(
            "unit_exp",
            "unit test experiment",
            GeneratorConfig::thai_like(),
        )
        .scale(2_000)
        .quiet()
        .strategy("bf", |_| Box::new(BreadthFirst::new()))
        .strategy("soft", |_| Box::new(SimpleStrategy::soft()))
    }

    #[test]
    fn run_produces_one_report_per_strategy() {
        let run = tiny().run();
        assert_eq!(run.reports.len(), 2);
        assert_eq!(run.reports[0].strategy, "breadth-first");
        assert!(run.reports.iter().all(|r| r.crawled > 0));
        assert_eq!(run.early(4), run.ws.num_pages() as u64 / 4);
    }

    #[test]
    fn run_on_reuses_a_space_and_matches_run() {
        let e = tiny();
        let run = e.run();
        let again = e.run_on(&run.ws);
        assert_eq!(run.reports, again, "same space, same reports");
    }

    #[test]
    fn oracle_classifier_switches_the_judgment_path() {
        let run = tiny().oracle_classifier().run();
        assert!(run.reports.iter().all(|r| r.classifier == "oracle"));
    }
}
