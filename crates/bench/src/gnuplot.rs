//! Gnuplot script emission — the paper's figures were gnuplot plots;
//! every figure binary leaves a ready-to-run `.gp` script next to its
//! CSVs so `gnuplot results/fig3_harvest.gp` regenerates the figure as
//! the paper drew it.

use langcrawl_core::metrics::CrawlReport;
use std::io::Write;

/// Which column of the report CSVs a plot draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlotKind {
    /// Harvest rate [%] vs pages crawled (CSV column 3).
    Harvest,
    /// Coverage [%] vs pages crawled (CSV column 4).
    Coverage,
    /// URL queue size vs pages crawled (CSV column 5).
    QueueSize,
}

impl PlotKind {
    fn column(self) -> usize {
        match self {
            PlotKind::Harvest => 3,
            PlotKind::Coverage => 4,
            PlotKind::QueueSize => 5,
        }
    }

    fn y_label(self) -> &'static str {
        match self {
            PlotKind::Harvest => "Harvest Rate [%]",
            PlotKind::Coverage => "Coverage [%]",
            PlotKind::QueueSize => "URL Queue Size [URLs]",
        }
    }

    fn scale(self) -> &'static str {
        // Harvest/coverage CSVs store fractions; plot as percent.
        match self {
            PlotKind::Harvest | PlotKind::Coverage => "*100",
            PlotKind::QueueSize => "",
        }
    }
}

/// Render a gnuplot script plotting one curve per report, reading the
/// CSVs written by [`crate::runner::write_csv`] under the given file
/// prefix.
pub fn script(title: &str, kind: PlotKind, reports: &[CrawlReport], file_prefix: &str) -> String {
    let mut out = String::new();
    out.push_str("set datafile separator ','\n");
    out.push_str(&format!("set title \"{title}\"\n"));
    out.push_str("set xlabel \"Number of Pages Crawled\"\n");
    out.push_str(&format!("set ylabel \"{}\"\n", kind.y_label()));
    if kind != PlotKind::QueueSize {
        out.push_str("set yrange [0:100]\n");
    }
    out.push_str("set key bottom right\n");
    out.push_str("plot \\\n");
    let col = kind.column();
    let scale = kind.scale();
    let lines: Vec<String> = reports
        .iter()
        .map(|r| {
            let csv = format!("{file_prefix}_{}.csv", sanitize(&r.strategy));
            format!(
                "  '{csv}' using 1:(${col}{scale}) with lines title \"{}\"",
                r.strategy
            )
        })
        .collect();
    out.push_str(&lines.join(", \\\n"));
    out.push('\n');
    out.push_str("pause -1 \"press enter\"\n");
    out
}

/// File-name mangling matching [`crate::runner::write_csv`] callers.
pub fn sanitize(strategy: &str) -> String {
    strategy.replace([' ', '=', '.'], "_")
}

/// Write the script under [`crate::runner::results_dir`] (no-op if the
/// directory cannot be created, matching `write_csv`).
pub fn write_script(title: &str, kind: PlotKind, reports: &[CrawlReport], file_prefix: &str) {
    let dir = crate::runner::results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let name = match kind {
        PlotKind::Harvest => "harvest",
        PlotKind::Coverage => "coverage",
        PlotKind::QueueSize => "queue",
    };
    let path = dir.join(format!("{file_prefix}_{name}.gp"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let body = script(title, kind, reports, file_prefix);
        if f.write_all(body.as_bytes()).is_ok() {
            println!("  [gnuplot] {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrawl_core::metrics::{CrawlReport, Sample};

    fn report(name: &str) -> CrawlReport {
        CrawlReport {
            strategy: name.into(),
            classifier: "meta".into(),
            samples: vec![Sample {
                crawled: 10,
                relevant: 5,
                queue_size: 3,
            }],
            crawled: 10,
            relevant_crawled: 5,
            total_relevant: 8,
            max_queue: 3,
            total_pushes: 12,
            visited: Vec::new(),
            attempts: 10,
            retries: 0,
            gave_up: 0,
            ticks: 10,
        }
    }

    #[test]
    fn script_references_each_csv() {
        let reports = [report("soft-focused"), report("limited-distance N=2")];
        let s = script("Fig X", PlotKind::Harvest, &reports, "figX");
        assert!(s.contains("figX_soft-focused.csv"));
        assert!(s.contains("figX_limited-distance_N_2.csv"));
        assert!(s.contains("($3*100)"));
        assert!(s.contains("set yrange [0:100]"));
    }

    #[test]
    fn queue_plot_uses_raw_counts() {
        let s = script("q", PlotKind::QueueSize, &[report("a")], "f");
        assert!(s.contains("($5)"));
        assert!(!s.contains("yrange [0:100]"));
    }

    #[test]
    fn sanitize_matches_write_csv_mangling() {
        assert_eq!(
            sanitize("prior. limited-distance N=3"),
            "prior__limited-distance_N_3"
        );
    }
}
