//! Criterion microbenches for the hot paths of the stack:
//! URL queue operations, charset detection, HTML link extraction,
//! web-space generation, and end-to-end simulator throughput.
//!
//! These are the numbers that justify the perf-relevant design choices
//! in DESIGN.md (bucketed queue, CSR graph, byte-level HTML scanning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use langcrawl_charset::encode::{encode_japanese, encode_thai, japanese_demo_tokens, thai_demo_tokens};
use langcrawl_charset::{detect, Charset};
use langcrawl_core::classifier::OracleClassifier;
use langcrawl_core::queue::{Entry, UrlQueue};
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::{LimitedDistanceStrategy, SimpleStrategy};
use langcrawl_html::{extract_links, extract_meta_charset};
use langcrawl_url::{normalize, resolve, Url};
use langcrawl_webgraph::GeneratorConfig;
use std::hint::black_box;

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("push_pop_100k_2levels", |b| {
        b.iter(|| {
            let mut q = UrlQueue::new(100_000, 2);
            for i in 0..100_000u32 {
                q.push(Entry {
                    page: i,
                    priority: (i % 2) as u8,
                    distance: 0,
                });
            }
            let mut n = 0u32;
            while let Some(e) = q.pop() {
                n = n.wrapping_add(e.page);
            }
            black_box(n)
        })
    });
    g.bench_function("push_pop_100k_reprioritized", |b| {
        b.iter(|| {
            let mut q = UrlQueue::new(100_000, 5);
            // Every page admitted twice: low priority then high.
            for i in 0..100_000u32 {
                q.push(Entry {
                    page: i,
                    priority: 4,
                    distance: 4,
                });
            }
            for i in 0..100_000u32 {
                q.push(Entry {
                    page: i,
                    priority: 0,
                    distance: 0,
                });
            }
            let mut n = 0u32;
            while let Some(e) = q.pop() {
                n = n.wrapping_add(e.page);
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_detect(c: &mut Criterion) {
    let mut g = c.benchmark_group("charset_detect");
    let ja = japanese_demo_tokens();
    let ja: Vec<_> = ja.iter().cycle().take(2_000).copied().collect();
    let th = thai_demo_tokens();
    let th: Vec<_> = th.iter().cycle().take(2_000).copied().collect();
    let cases = [
        ("eucjp", encode_japanese(&ja, Charset::EucJp)),
        ("sjis", encode_japanese(&ja, Charset::ShiftJis)),
        ("iso2022jp", encode_japanese(&ja, Charset::Iso2022Jp)),
        ("utf8_ja", encode_japanese(&ja, Charset::Utf8)),
        ("tis620", encode_thai(&th, Charset::Tis620)),
        ("ascii", b"the quick brown fox jumps over the lazy dog. ".repeat(80).to_vec()),
    ];
    for (name, bytes) in &cases {
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), bytes, |b, bytes| {
            b.iter(|| black_box(detect(black_box(bytes))).charset)
        });
    }
    g.finish();
}

fn bench_html(c: &mut Criterion) {
    let mut g = c.benchmark_group("html");
    let mut page = String::from(
        r#"<html><head><meta http-equiv="content-type" content="text/html; charset=tis-620"><title>x</title></head><body>"#,
    );
    for i in 0..200 {
        page.push_str(&format!(
            r#"<p>lorem ipsum dolor sit amet</p><a href="/dir{}/page{}.html">link</a>"#,
            i % 17,
            i
        ));
    }
    page.push_str("</body></html>");
    let bytes = page.into_bytes();
    let base = Url::parse("http://www.example.co.th/index.html").unwrap();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("extract_links_200", |b| {
        b.iter(|| black_box(extract_links(black_box(&bytes), &base)).len())
    });
    g.bench_function("extract_meta", |b| {
        b.iter(|| black_box(extract_meta_charset(black_box(&bytes))))
    });
    g.finish();
}

fn bench_url(c: &mut Criterion) {
    let mut g = c.benchmark_group("url");
    let base = Url::parse("http://www.example.ac.th/a/b/c.html").unwrap();
    g.bench_function("resolve_relative", |b| {
        b.iter(|| black_box(resolve(&base, black_box("../img/x/../y.gif"))))
    });
    let u = Url::parse("HTTP://Example.AC.TH:80/a/./b/%7Euser/index.html?x=1").unwrap();
    g.bench_function("normalize", |b| b.iter(|| black_box(normalize(black_box(&u)))));
    g.finish();
}

fn bench_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("webgraph_generate");
    g.sample_size(10);
    for scale in [10_000u32, 50_000] {
        g.throughput(Throughput::Elements(scale as u64));
        g.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            b.iter(|| {
                black_box(GeneratorConfig::thai_like().scaled(scale).build(7)).num_edges()
            })
        });
    }
    g.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    let ws = GeneratorConfig::thai_like().scaled(50_000).build(7);
    let oracle = OracleClassifier::target(ws.target_language());
    g.throughput(Throughput::Elements(ws.num_pages() as u64));
    g.bench_function("soft_focused_full_crawl_50k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&ws, SimConfig::default());
            black_box(sim.run(&mut SimpleStrategy::soft(), &oracle)).crawled
        })
    });
    g.bench_function("prioritized_limited3_full_crawl_50k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&ws, SimConfig::default());
            black_box(sim.run(&mut LimitedDistanceStrategy::prioritized(3), &oracle)).crawled
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_queue,
    bench_detect,
    bench_html,
    bench_url,
    bench_generate,
    bench_simulate
);
criterion_main!(benches);
