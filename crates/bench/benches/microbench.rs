//! Self-contained microbenches for the hot paths of the stack: URL
//! queue operations, charset detection, HTML link extraction, web-space
//! generation, end-to-end simulator throughput — and the cost of the
//! event-sink seam the layered engine introduced.
//!
//! These are the numbers that justify the perf-relevant design choices
//! in DESIGN.md (bucketed queue, CSR graph, byte-level HTML scanning,
//! monomorphic engine loop). No external harness: each bench warms up,
//! runs until a fixed time budget, and reports min/median wall time.
//! `LANGCRAWL_SCALE` sets the space size for the simulator benches
//! (default 50k here; the DESIGN.md overhead figure uses 200k).

use langcrawl_bench::runner::env_scale;
use langcrawl_charset::encode::{
    encode_japanese, encode_thai, japanese_demo_tokens, thai_demo_tokens,
};
use langcrawl_charset::{detect, Charset};
use langcrawl_core::classifier::OracleClassifier;
use langcrawl_core::queue::{Entry, UrlQueue};
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::{LimitedDistanceStrategy, SimpleStrategy, Strategy};
use langcrawl_core::{CrawlEngine, EngineConfig};
use langcrawl_html::{extract_links, extract_meta_charset};
use langcrawl_url::{normalize, resolve, Url};
use langcrawl_webgraph::GeneratorConfig;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Run `f` repeatedly for ~`budget`, after one warmup call. Returns the
/// per-iteration minimum and median.
fn measure<R>(budget: Duration, mut f: impl FnMut() -> R) -> (Duration, Duration) {
    black_box(f());
    let mut times = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget || times.len() < 3 {
        let t = Instant::now();
        black_box(f());
        times.push(t.elapsed());
        if times.len() >= 1_000 {
            break;
        }
    }
    times.sort();
    (times[0], times[times.len() / 2])
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    }
}

/// One bench line: name, timings, optional throughput from `units/iter`.
fn bench<R>(name: &str, units: Option<(f64, &str)>, f: impl FnMut() -> R) {
    let (min, median) = measure(Duration::from_millis(200), f);
    let rate = match units {
        Some((n, unit)) => format!("  ({:.1} M{unit}/s)", n / median.as_secs_f64() / 1.0e6),
        None => String::new(),
    };
    println!(
        "  {name:<40} min {:>10}  median {:>10}{rate}",
        fmt(min),
        fmt(median)
    );
}

fn bench_queue() {
    println!("queue:");
    bench("push_pop_100k_2levels", Some((100_000.0, "ops")), || {
        let mut q = UrlQueue::new(100_000, 2);
        for i in 0..100_000u32 {
            q.push(Entry {
                page: i,
                priority: (i % 2) as u8,
                distance: 0,
            });
        }
        let mut n = 0u32;
        while let Some(e) = q.pop() {
            n = n.wrapping_add(e.page);
        }
        n
    });
    bench(
        "push_pop_100k_reprioritized",
        Some((200_000.0, "ops")),
        || {
            let mut q = UrlQueue::new(100_000, 5);
            // Every page admitted twice: low priority then high.
            for i in 0..100_000u32 {
                q.push(Entry {
                    page: i,
                    priority: 4,
                    distance: 4,
                });
            }
            for i in 0..100_000u32 {
                q.push(Entry {
                    page: i,
                    priority: 0,
                    distance: 0,
                });
            }
            let mut n = 0u32;
            while let Some(e) = q.pop() {
                n = n.wrapping_add(e.page);
            }
            n
        },
    );
}

fn bench_detect() {
    println!("charset_detect:");
    let ja = japanese_demo_tokens();
    let ja: Vec<_> = ja.iter().cycle().take(2_000).copied().collect();
    let th = thai_demo_tokens();
    let th: Vec<_> = th.iter().cycle().take(2_000).copied().collect();
    let cases = [
        ("eucjp", encode_japanese(&ja, Charset::EucJp)),
        ("sjis", encode_japanese(&ja, Charset::ShiftJis)),
        ("iso2022jp", encode_japanese(&ja, Charset::Iso2022Jp)),
        ("utf8_ja", encode_japanese(&ja, Charset::Utf8)),
        ("tis620", encode_thai(&th, Charset::Tis620)),
        (
            "ascii",
            b"the quick brown fox jumps over the lazy dog. "
                .repeat(80)
                .to_vec(),
        ),
    ];
    for (name, bytes) in &cases {
        bench(name, Some((bytes.len() as f64, "B")), || {
            detect(black_box(bytes)).charset
        });
    }
}

fn bench_html() {
    println!("html:");
    let mut page = String::from(
        r#"<html><head><meta http-equiv="content-type" content="text/html; charset=tis-620"><title>x</title></head><body>"#,
    );
    for i in 0..200 {
        page.push_str(&format!(
            r#"<p>lorem ipsum dolor sit amet</p><a href="/dir{}/page{}.html">link</a>"#,
            i % 17,
            i
        ));
    }
    page.push_str("</body></html>");
    let bytes = page.into_bytes();
    let base = Url::parse("http://www.example.co.th/index.html").unwrap();
    bench("extract_links_200", Some((bytes.len() as f64, "B")), || {
        extract_links(black_box(&bytes), &base).len()
    });
    bench("extract_meta", Some((bytes.len() as f64, "B")), || {
        extract_meta_charset(black_box(&bytes))
    });
}

fn bench_url() {
    println!("url:");
    let base = Url::parse("http://www.example.ac.th/a/b/c.html").unwrap();
    bench("resolve_relative", None, || {
        resolve(&base, black_box("../img/x/../y.gif"))
    });
    let u = Url::parse("HTTP://Example.AC.TH:80/a/./b/%7Euser/index.html?x=1").unwrap();
    bench("normalize", None, || normalize(black_box(&u)));
}

fn bench_generate() {
    println!("webgraph_generate:");
    for scale in [10_000u32, 50_000] {
        bench(
            &format!("thai_like_{scale}"),
            Some((scale as f64, "URLs")),
            || {
                GeneratorConfig::thai_like()
                    .scaled(scale)
                    .build(7)
                    .num_edges()
            },
        );
    }
}

fn bench_simulate(scale: u32) {
    println!("simulate (n={scale}):");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(7);
    let oracle = OracleClassifier::target(ws.target_language());
    let pages = ws.num_pages() as f64;
    bench("soft_focused_full_crawl", Some((pages, "pages")), || {
        let mut sim = Simulator::new(&ws, SimConfig::default());
        sim.run(&mut SimpleStrategy::soft(), &oracle).crawled
    });
    bench(
        "prioritized_limited3_full_crawl",
        Some((pages, "pages")),
        || {
            let mut sim = Simulator::new(&ws, SimConfig::default());
            sim.run(&mut LimitedDistanceStrategy::prioritized(3), &oracle)
                .crawled
        },
    );
}

/// The acceptance gate for the layered refactor: the event-sink seam
/// (Simulator = engine + metrics sink + report assembly) must cost no
/// more than 5% over the bare engine loop with no sinks attached. The
/// two configurations are timed *interleaved* so clock-frequency drift
/// and cache warmth hit both equally; the comparison uses per-config
/// minima.
fn bench_sink_overhead(scale: u32) {
    println!("engine sink overhead (n={scale}):");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(7);
    let oracle = OracleClassifier::target(ws.target_language());
    let engine = CrawlEngine::new(&ws, EngineConfig::default());

    let run_bare = || {
        let mut strategy = SimpleStrategy::soft();
        black_box(engine.run(
            UrlQueue::new(ws.num_pages(), strategy.levels()),
            &mut strategy,
            &oracle,
            &mut [],
        ))
    };
    let run_sinked = || {
        let mut sim = Simulator::new(&ws, SimConfig::default());
        black_box(sim.run(&mut SimpleStrategy::soft(), &oracle).crawled)
    };

    run_bare();
    run_sinked();
    let mut bare = Duration::MAX;
    let mut sinked = Duration::MAX;
    for _ in 0..15 {
        let t = Instant::now();
        run_bare();
        bare = bare.min(t.elapsed());
        let t = Instant::now();
        run_sinked();
        sinked = sinked.min(t.elapsed());
    }
    let overhead = sinked.as_secs_f64() / bare.as_secs_f64() - 1.0;
    println!(
        "  bare engine {:>10}   simulator+sinks {:>10}   overhead {:+.1}%  [{}]",
        fmt(bare),
        fmt(sinked),
        100.0 * overhead,
        if overhead <= 0.05 {
            "OK"
        } else {
            "OVER BUDGET"
        }
    );
}

fn main() {
    let scale = env_scale(50_000);
    bench_queue();
    bench_detect();
    bench_html();
    bench_url();
    bench_generate();
    bench_simulate(scale);
    bench_sink_overhead(scale);
}
