//! Self-contained microbenches for the hot paths of the stack: URL
//! queue operations, charset detection, HTML link extraction, web-space
//! generation (sequential and parallel), end-to-end simulator
//! throughput — and the cost of the event-sink seam the layered engine
//! introduced.
//!
//! These are the numbers that justify the perf-relevant design choices
//! in DESIGN.md (bucketed queue, CSR graph, byte-level HTML scanning,
//! monomorphic engine loop, per-host-stream parallel generation). No
//! external harness: each bench warms up, runs until a fixed time
//! budget, and reports min/median wall time. `LANGCRAWL_SCALE` sets the
//! space size for the simulator benches (default 50k here; the
//! DESIGN.md overhead figure uses 200k).
//!
//! With `--json`, additionally writes a machine-readable trajectory
//! point `BENCH_<git-short-sha>.json` (generation / queue / detector /
//! end-to-end throughput plus the gate verdicts) so CI can archive one
//! bench record per commit. The gates — sink overhead ≤ 5%, parallel
//! generation bit-parity, ≥2× generation speedup on 4+ cores,
//! retry-machinery overhead ≤ 10% at zero fault rate, single-slot
//! scheduler overhead ≤ 5% over the legacy loop, and a ≥5× end-to-end
//! speedup of the incremental link-analysis engine over the legacy
//! full-recompute PageRank ordering — fail the process with a nonzero
//! exit either way.

use langcrawl_bench::runner::env_scale;
use langcrawl_charset::encode::{
    encode_japanese, encode_thai, japanese_demo_tokens, thai_demo_tokens,
};
use langcrawl_charset::{detect, Charset};
use langcrawl_core::classifier::OracleClassifier;
use langcrawl_core::linkgraph::pagerank::RankState;
use langcrawl_core::queue::{Entry, UrlQueue};
use langcrawl_core::sched::SchedConfig;
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::{
    LimitedDistanceStrategy, OnlinePageRank, PageView, SimpleStrategy, Strategy,
};
use langcrawl_core::{CrawlEngine, EngineConfig, LinkGraph};
use langcrawl_html::{extract_links, extract_meta_charset};
use langcrawl_url::{normalize, resolve, Url};
use langcrawl_webgraph::generate::generate_with_threads;
use langcrawl_webgraph::parallel::effective_threads;
use langcrawl_webgraph::{FaultConfig, GeneratorConfig, PageId};
use std::collections::HashMap;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Allocation counting, behind the `count-allocs` feature: a
/// dependency-free `#[global_allocator]` wrapper around the system
/// allocator that bumps one relaxed atomic per `alloc`/`realloc`. It
/// lives in this bench target (not the library, which forbids `unsafe`)
/// because only the microbench needs it, and only when asked: counting
/// perturbs the throughput sections, so the default build stays on the
/// plain system allocator and the steady-state gate reports "not
/// gated".
#[cfg(feature = "count-allocs")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Heap allocations observed since process start (alloc + realloc;
    /// deallocations are not counted — the gate cares about allocation
    /// *events*, not live bytes).
    pub(crate) static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub(crate) struct CountingAlloc;

    // SAFETY: every method forwards verbatim to `System`, which upholds
    // the `GlobalAlloc` contract; the counter increments touch no
    // allocator state and cannot affect the returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        // SAFETY: caller contract forwarded unchanged to `System`.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        // SAFETY: `ptr` was returned by this allocator, i.e. by
        // `System`, with the same `layout` — `System`'s own contract.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        // SAFETY: caller contract forwarded unchanged to `System`.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static COUNTING: CountingAlloc = CountingAlloc;
}

/// Allocation events so far; `0` forever when counting is off.
fn alloc_count() -> u64 {
    #[cfg(feature = "count-allocs")]
    {
        counting_alloc::ALLOCS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        0
    }
}

/// Whether the counting allocator is compiled in.
const COUNTING_ALLOCS: bool = cfg!(feature = "count-allocs");

/// Run `f` repeatedly for ~`budget`, after one warmup call. Returns the
/// per-iteration minimum and median.
fn measure<R>(budget: Duration, mut f: impl FnMut() -> R) -> (Duration, Duration) {
    black_box(f());
    let mut times = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget || times.len() < 3 {
        let t = Instant::now();
        black_box(f());
        times.push(t.elapsed());
        if times.len() >= 1_000 {
            break;
        }
    }
    times.sort();
    (times[0], times[times.len() / 2])
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    }
}

/// One bench line: name, timings, optional throughput from `units/iter`.
/// Returns units-per-second from the median (0.0 when `units` is None).
fn bench<R>(name: &str, units: Option<(f64, &str)>, f: impl FnMut() -> R) -> f64 {
    let (min, median) = measure(Duration::from_millis(200), f);
    let mut per_sec = 0.0;
    let rate = match units {
        Some((n, unit)) => {
            per_sec = n / median.as_secs_f64();
            format!("  ({:.1} M{unit}/s)", per_sec / 1.0e6)
        }
        None => String::new(),
    };
    println!(
        "  {name:<40} min {:>10}  median {:>10}{rate}",
        fmt(min),
        fmt(median)
    );
    per_sec
}

/// The machine-readable trajectory point `--json` emits, plus the gate
/// verdicts that decide the exit code.
#[derive(Default)]
struct BenchRecord {
    queue_ops_per_s: f64,
    batch_admit_ops_per_s: f64,
    detector_bytes_per_s: f64,
    dfa_bytes_per_s: f64,
    generation_pages_per_s_1t: f64,
    generation_pages_per_s: f64,
    generation_speedup: f64,
    /// Worker threads the parallel run actually used.
    generation_threads: usize,
    /// The machine's `available_parallelism`, reported alongside the
    /// thread count actually used so the speedup gate is interpretable
    /// across CI hosts (a 1.0× speedup on a 1-core runner is fine; the
    /// same number on a 16-core box is a bug).
    generation_available_parallelism: usize,
    thread_parity_ok: bool,
    speedup_gated: bool,
    speedup_ok: bool,
    simulator_pages_per_s: f64,
    sink_overhead: f64,
    sink_overhead_ok: bool,
    fault_overhead: f64,
    fault_overhead_ok: bool,
    sched_overhead: f64,
    sched_overhead_ok: bool,
    snapshot_overhead: f64,
    snapshot_overhead_ok: bool,
    /// Allocations per fetch over the final stretch of a warm crawl —
    /// must be exactly zero when the counting allocator is compiled in.
    steady_state_allocs_per_fetch: f64,
    steady_state_gated: bool,
    steady_state_ok: bool,
    /// Worklist relaxations per second of the incremental rank solver
    /// driven over a full space ingest.
    link_rank_updates_per_s: f64,
    /// End-to-end pagerank-ordered crawl throughput, incremental engine.
    link_pagerank_pages_per_s: f64,
    /// Same crawl under the legacy hash-map full recompute.
    link_pagerank_legacy_pages_per_s: f64,
    /// `link_pagerank_pages_per_s / link_pagerank_legacy_pages_per_s`.
    link_speedup: f64,
    link_speedup_ok: bool,
}

impl BenchRecord {
    fn failures(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if !self.thread_parity_ok {
            out.push("parallel generation is not bit-identical across thread counts");
        }
        if self.speedup_gated && !self.speedup_ok {
            out.push("parallel generation speedup below 2x on 4+ cores");
        }
        if !self.sink_overhead_ok {
            out.push("event-sink seam overhead above the 5% budget");
        }
        if !self.fault_overhead_ok {
            out.push("retry machinery overhead above the 10% budget at zero fault rate");
        }
        if !self.sched_overhead_ok {
            out.push("single-slot scheduler overhead above the 5% budget over the legacy loop");
        }
        if !self.snapshot_overhead_ok {
            out.push("snapshot capture overhead above the 5% budget at every-1000-ticks cadence");
        }
        if self.steady_state_gated && !self.steady_state_ok {
            out.push("steady-state crawl fetches allocate (must be zero after warm-up)");
        }
        if !self.link_speedup_ok {
            out.push("incremental link-analysis speedup below 5x over the legacy recompute");
        }
        out
    }

    fn to_json(&self, git: &str, scale: u32) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"git\": \"{git}\",\n",
                "  \"scale\": {scale},\n",
                "  \"queue_ops_per_s\": {queue:.0},\n",
                "  \"batch_admit_ops_per_s\": {batch:.0},\n",
                "  \"detector_bytes_per_s\": {det:.0},\n",
                "  \"dfa_bytes_per_s\": {dfa:.0},\n",
                "  \"generation\": {{\n",
                "    \"pages_per_s_1t\": {g1:.0},\n",
                "    \"pages_per_s\": {gn:.0},\n",
                "    \"speedup\": {sp:.3},\n",
                "    \"threads\": {th},\n",
                "    \"available_parallelism\": {ap}\n",
                "  }},\n",
                "  \"simulator_pages_per_s\": {sim:.0},\n",
                "  \"sink_overhead\": {ov:.4},\n",
                "  \"fault_overhead\": {fov:.4},\n",
                "  \"sched_overhead\": {sov:.4},\n",
                "  \"snapshot_overhead\": {snov:.4},\n",
                "  \"steady_state_allocs_per_fetch\": {ssa:.4},\n",
                "  \"link_analysis\": {{\n",
                "    \"rank_updates_per_s\": {lru:.0},\n",
                "    \"pagerank_pages_per_s\": {lpp:.0},\n",
                "    \"legacy_pages_per_s\": {llp:.0},\n",
                "    \"speedup\": {lsp:.3}\n",
                "  }},\n",
                "  \"gates\": {{\n",
                "    \"thread_parity_ok\": {par},\n",
                "    \"speedup_gated\": {spg},\n",
                "    \"speedup_ok\": {spok},\n",
                "    \"sink_overhead_ok\": {ovok},\n",
                "    \"fault_overhead_ok\": {fovok},\n",
                "    \"sched_overhead_ok\": {sovok},\n",
                "    \"snapshot_overhead_ok\": {snovok},\n",
                "    \"steady_state_gated\": {ssg},\n",
                "    \"steady_state_ok\": {ssok},\n",
                "    \"link_speedup_ok\": {lspok}\n",
                "  }}\n",
                "}}\n"
            ),
            git = git,
            scale = scale,
            queue = self.queue_ops_per_s,
            batch = self.batch_admit_ops_per_s,
            det = self.detector_bytes_per_s,
            dfa = self.dfa_bytes_per_s,
            g1 = self.generation_pages_per_s_1t,
            gn = self.generation_pages_per_s,
            sp = self.generation_speedup,
            th = self.generation_threads,
            ap = self.generation_available_parallelism,
            sim = self.simulator_pages_per_s,
            ov = self.sink_overhead,
            fov = self.fault_overhead,
            sov = self.sched_overhead,
            snov = self.snapshot_overhead,
            ssa = self.steady_state_allocs_per_fetch,
            lru = self.link_rank_updates_per_s,
            lpp = self.link_pagerank_pages_per_s,
            llp = self.link_pagerank_legacy_pages_per_s,
            lsp = self.link_speedup,
            par = self.thread_parity_ok,
            spg = self.speedup_gated,
            spok = self.speedup_ok,
            ovok = self.sink_overhead_ok,
            fovok = self.fault_overhead_ok,
            sovok = self.sched_overhead_ok,
            snovok = self.snapshot_overhead_ok,
            ssg = self.steady_state_gated,
            ssok = self.steady_state_ok,
            lspok = self.link_speedup_ok,
        )
    }
}

fn bench_queue(rec: &mut BenchRecord) {
    println!("queue:");
    rec.queue_ops_per_s = bench("push_pop_100k_2levels", Some((100_000.0, "ops")), || {
        let mut q = UrlQueue::new(100_000, 2);
        for i in 0..100_000u32 {
            q.push(Entry {
                page: i,
                priority: (i % 2) as u8,
                distance: 0,
            });
        }
        let mut n = 0u32;
        while let Some(e) = q.pop() {
            n = n.wrapping_add(e.page);
        }
        n
    });
    bench(
        "push_pop_100k_reprioritized",
        Some((200_000.0, "ops")),
        || {
            let mut q = UrlQueue::new(100_000, 5);
            // Every page admitted twice: low priority then high.
            for i in 0..100_000u32 {
                q.push(Entry {
                    page: i,
                    priority: 4,
                    distance: 4,
                });
            }
            for i in 0..100_000u32 {
                q.push(Entry {
                    page: i,
                    priority: 0,
                    distance: 0,
                });
            }
            let mut n = 0u32;
            while let Some(e) = q.pop() {
                n = n.wrapping_add(e.page);
            }
            n
        },
    );
}

/// Batched admission through [`ShardedFrontier::push_all`] — the shape
/// of the engine's hot admission path after the zero-allocation
/// rewrite: outlinks arrive as one batch per fetch, and the frontier
/// defers its per-host exposure refresh to one pass over the batch.
fn bench_batch_admit(rec: &mut BenchRecord) {
    use langcrawl_core::frontier::Frontier;
    use langcrawl_core::shard::ShardedFrontier;
    println!("sharded_frontier:");
    const PAGES: u32 = 100_000;
    const HOSTS: usize = 1_000;
    const BATCH: u32 = 25;
    let host_of_page: Vec<u32> = (0..PAGES).map(|p| p % HOSTS as u32).collect();
    rec.batch_admit_ops_per_s = bench(
        "batch_admit_100k_batch25_4shards",
        Some((2.0 * PAGES as f64, "ops")),
        || {
            let mut f = ShardedFrontier::new(host_of_page.clone(), HOSTS, 2, 4);
            let mut batch = [Entry {
                page: 0,
                priority: 0,
                distance: 0,
            }; BATCH as usize];
            for chunk in 0..PAGES / BATCH {
                for (i, slot) in batch.iter_mut().enumerate() {
                    let page = chunk * BATCH + i as u32;
                    *slot = Entry {
                        page,
                        priority: (page % 2) as u8,
                        distance: 0,
                    };
                }
                f.push_all(&batch);
            }
            let mut n = 0u32;
            while let Some(e) = f.pop() {
                n = n.wrapping_add(e.page);
            }
            n
        },
    );
}

fn bench_detect(rec: &mut BenchRecord) {
    println!("charset_detect:");
    let ja = japanese_demo_tokens();
    let ja: Vec<_> = ja.iter().cycle().take(2_000).copied().collect();
    let th = thai_demo_tokens();
    let th: Vec<_> = th.iter().cycle().take(2_000).copied().collect();
    let cases = [
        ("eucjp", encode_japanese(&ja, Charset::EucJp)),
        ("sjis", encode_japanese(&ja, Charset::ShiftJis)),
        ("iso2022jp", encode_japanese(&ja, Charset::Iso2022Jp)),
        ("utf8_ja", encode_japanese(&ja, Charset::Utf8)),
        ("tis620", encode_thai(&th, Charset::Tis620)),
        (
            "ascii",
            b"the quick brown fox jumps over the lazy dog. "
                .repeat(80)
                .to_vec(),
        ),
    ];
    let mut total = 0.0;
    for (name, bytes) in &cases {
        total += bench(name, Some((bytes.len() as f64, "B")), || {
            detect(black_box(bytes)).charset
        });
    }
    rec.detector_bytes_per_s = total / cases.len() as f64;

    // The fused-DFA throughput on its own: one long single-encoding
    // buffer, so the run is dominated by the flat `state * 256 + byte`
    // table walk rather than prober setup or candidate ranking. Kept
    // out of the `detector_bytes_per_s` mean so that metric stays
    // comparable with earlier trajectory points.
    println!("charset_dfa:");
    let long_ja: Vec<_> = japanese_demo_tokens()
        .iter()
        .cycle()
        .take(40_000)
        .copied()
        .collect();
    let long = encode_japanese(&long_ja, Charset::EucJp);
    rec.dfa_bytes_per_s = bench(
        "eucjp_fused_dfa_long",
        Some((long.len() as f64, "B")),
        || detect(black_box(&long)).charset,
    );
}

fn bench_html() {
    println!("html:");
    let mut page = String::from(
        r#"<html><head><meta http-equiv="content-type" content="text/html; charset=tis-620"><title>x</title></head><body>"#,
    );
    for i in 0..200 {
        page.push_str(&format!(
            r#"<p>lorem ipsum dolor sit amet</p><a href="/dir{}/page{}.html">link</a>"#,
            i % 17,
            i
        ));
    }
    page.push_str("</body></html>");
    let bytes = page.into_bytes();
    let base = Url::parse("http://www.example.co.th/index.html").unwrap();
    bench("extract_links_200", Some((bytes.len() as f64, "B")), || {
        extract_links(black_box(&bytes), &base).len()
    });
    bench("extract_meta", Some((bytes.len() as f64, "B")), || {
        extract_meta_charset(black_box(&bytes))
    });
}

fn bench_url() {
    println!("url:");
    let base = Url::parse("http://www.example.ac.th/a/b/c.html").unwrap();
    bench("resolve_relative", None, || {
        resolve(&base, black_box("../img/x/../y.gif"))
    });
    let u = Url::parse("HTTP://Example.AC.TH:80/a/./b/%7Euser/index.html?x=1").unwrap();
    bench("normalize", None, || normalize(black_box(&u)));
}

fn bench_generate() {
    println!("webgraph_generate:");
    for scale in [10_000u32, 50_000] {
        bench(
            &format!("thai_like_{scale}"),
            Some((scale as f64, "URLs")),
            || {
                GeneratorConfig::thai_like()
                    .scaled(scale)
                    .build(7)
                    .num_edges()
            },
        );
    }
}

/// Parallel generation: 1 thread vs all available, on the 200k figure
/// preset. Checks bit-parity between the two spaces (the
/// thread-count-independence contract) and, on 4+ cores, gates a ≥2×
/// speedup.
fn bench_generate_parallel(rec: &mut BenchRecord) {
    let threads = effective_threads();
    let scale = 200_000u32;
    let cfg = GeneratorConfig::thai_like().scaled(scale);
    println!("webgraph_generate_parallel (n={scale}, threads={threads}):");

    let time_min = |t: usize| {
        let mut best = Duration::MAX;
        let mut hash = 0u64;
        for _ in 0..3 {
            let t0 = Instant::now();
            let ws = generate_with_threads(&cfg, 7, t);
            best = best.min(t0.elapsed());
            hash = ws.content_hash();
        }
        (best, hash)
    };
    let (t1, h1) = time_min(1);
    let (tn, hn) = time_min(threads);

    // Record the worker count the parallel run *actually used* (the
    // resolved `effective_threads()`, honoring `LANGCRAWL_THREADS`)
    // next to the machine's raw `available_parallelism`; earlier
    // records conflated the two, which made a 1.0× speedup on a capped
    // run indistinguishable from a real regression.
    rec.generation_threads = threads;
    rec.generation_available_parallelism =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    rec.generation_pages_per_s_1t = scale as f64 / t1.as_secs_f64();
    rec.generation_pages_per_s = scale as f64 / tn.as_secs_f64();
    rec.generation_speedup = t1.as_secs_f64() / tn.as_secs_f64();
    rec.thread_parity_ok = h1 == hn;
    // Gate only when the run both asked for and can get 4+ workers: a
    // capped `LANGCRAWL_THREADS=8` on a 2-core runner cannot hit 2×.
    rec.speedup_gated = threads >= 4 && rec.generation_available_parallelism >= 4;
    rec.speedup_ok = rec.generation_speedup >= 2.0;

    println!(
        "  1 thread  {:>10}   ({:.2} M pages generated/s)",
        fmt(t1),
        rec.generation_pages_per_s_1t / 1.0e6
    );
    println!(
        "  {threads} threads {:>10}   ({:.2} M pages generated/s)",
        fmt(tn),
        rec.generation_pages_per_s / 1.0e6
    );
    println!(
        "  speedup {:.2}x  [{}]   thread parity [{}]",
        rec.generation_speedup,
        if !rec.speedup_gated {
            "not gated below 4 cores"
        } else if rec.speedup_ok {
            "OK"
        } else {
            "BELOW 2x"
        },
        if rec.thread_parity_ok {
            "OK"
        } else {
            "MISMATCH"
        },
    );
}

fn bench_simulate(rec: &mut BenchRecord, scale: u32) {
    println!("simulate (n={scale}):");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(7);
    let oracle = OracleClassifier::target(ws.target_language());
    let pages = ws.num_pages() as f64;
    rec.simulator_pages_per_s = bench("soft_focused_full_crawl", Some((pages, "pages")), || {
        let mut sim = Simulator::new(&ws, SimConfig::default());
        sim.run(&mut SimpleStrategy::soft(), &oracle).crawled
    });
    bench(
        "prioritized_limited3_full_crawl",
        Some((pages, "pages")),
        || {
            let mut sim = Simulator::new(&ws, SimConfig::default());
            sim.run(&mut LimitedDistanceStrategy::prioritized(3), &oracle)
                .crawled
        },
    );
}

/// Number of priority buckets importance is quantized onto (mirrors the
/// strategy module's constant for the frozen legacy baseline below).
const LEGACY_BUCKETS: u8 = 8;

/// The historical PageRank-ordered strategy, frozen verbatim as the
/// bench baseline: per-strategy `HashMap` adjacency, full power
/// iteration over fresh hash maps at every interval. The incremental
/// engine's ≥5× end-to-end gate is measured against this.
struct LegacyOnlinePageRank {
    interval: u64,
    iterations: u32,
    damping: f64,
    adjacency: HashMap<PageId, Vec<PageId>>,
    rank: HashMap<PageId, f64>,
}

impl LegacyOnlinePageRank {
    fn new() -> Self {
        LegacyOnlinePageRank {
            interval: 2_000,
            iterations: 10,
            damping: 0.85,
            adjacency: HashMap::new(),
            rank: HashMap::new(),
        }
    }

    fn recompute(&mut self) {
        let n = self.adjacency.len();
        if n == 0 {
            return;
        }
        let mut ids: Vec<PageId> = self.adjacency.keys().copied().collect();
        ids.sort_unstable();
        let base = (1.0 - self.damping) / n as f64;
        let mut rank: HashMap<PageId, f64> = ids.iter().map(|&p| (p, 1.0 / n as f64)).collect();
        for _ in 0..self.iterations {
            let mut next: HashMap<PageId, f64> = ids.iter().map(|&p| (p, base)).collect();
            for &p in &ids {
                let outs = &self.adjacency[&p];
                if outs.is_empty() {
                    continue;
                }
                let share = self.damping * rank[&p] / outs.len() as f64;
                for t in outs {
                    if let Some(r) = next.get_mut(t) {
                        *r += share;
                    }
                }
            }
            rank = next;
        }
        self.rank = rank;
    }

    fn bucket(&self, mass: f64, n: usize) -> u8 {
        let rel = mass * n as f64;
        let level = rel
            .max(1e-9)
            .log2()
            .clamp(-1.0, LEGACY_BUCKETS as f64 - 2.0);
        ((LEGACY_BUCKETS as f64 - 2.0 - level).round() as i64).clamp(0, LEGACY_BUCKETS as i64 - 1)
            as u8
    }
}

impl Strategy for LegacyOnlinePageRank {
    fn name(&self) -> String {
        format!("legacy-pagerank-ordered(every {})", self.interval)
    }

    fn levels(&self) -> usize {
        LEGACY_BUCKETS as usize
    }

    fn admit(&mut self, view: &PageView<'_>, out: &mut Vec<Entry>) {
        self.adjacency.insert(view.page, view.outlinks.to_vec());
        if view.crawled.is_multiple_of(self.interval) {
            self.recompute();
        }
        let n = self.adjacency.len().max(1);
        let own_rank = self.rank.get(&view.page).copied().unwrap_or(1.0 / n as f64);
        let share = own_rank / view.outlinks.len().max(1) as f64;
        for &t in view.outlinks {
            out.push(Entry {
                page: t,
                priority: self.bucket(share, n),
                distance: 0,
            });
        }
    }
}

/// The link-analysis engine section: raw incremental-solver relaxation
/// rate over a full space ingest, plus the end-to-end acceptance gate —
/// a whole pagerank-ordered crawl under the incremental engine must run
/// ≥5× faster than under the legacy full-recompute baseline above.
/// Capped at 40k pages so the legacy side (quadratic in crawl length)
/// stays benchable.
fn bench_link_analysis(rec: &mut BenchRecord, scale: u32) {
    let n = scale.min(40_000);
    println!("link analysis (n={n}):");
    let ws = GeneratorConfig::thai_like().scaled(n).build(7);
    let oracle = OracleClassifier::target(ws.target_language());
    let pages = ws.num_pages() as f64;

    // Raw solver rate: ingest the whole space into the shared store,
    // refreshing every 2 000 pages (the strategy's default cadence).
    let run_solver = || {
        let mut g = LinkGraph::with_page_capacity(ws.num_pages());
        let mut st = RankState::new(0.85);
        let mut i = 0u64;
        for p in ws.page_ids() {
            g.record_page(p, ws.outlinks(p));
            i += 1;
            if i.is_multiple_of(2_000) {
                st.update(&mut g);
            }
        }
        st.update(&mut g);
        st.relaxations()
    };
    // The solver is deterministic, so one dry run pins the relaxation
    // count the timed runs will repeat.
    let relaxations = run_solver() as f64;
    rec.link_rank_updates_per_s = bench(
        "rank_solver_ingest_full_space",
        Some((relaxations, "updates")),
        run_solver,
    );

    // The end-to-end race: a full pagerank-ordered crawl on the
    // incremental engine vs the frozen legacy full recompute. Timed
    // interleaved and compared on per-config minima, like the overhead
    // gates — each minimum comes from an uncontended round, which is
    // what makes the ratio reproducible on a shared machine.
    let run_inc = || {
        let mut sim = Simulator::new(&ws, SimConfig::default());
        black_box(sim.run(&mut OnlinePageRank::new(), &oracle).crawled)
    };
    let run_legacy = || {
        let mut sim = Simulator::new(&ws, SimConfig::default());
        black_box(sim.run(&mut LegacyOnlinePageRank::new(), &oracle).crawled)
    };
    run_inc();
    run_legacy();
    let mut t_inc = Duration::MAX;
    let mut t_legacy = Duration::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        run_inc();
        t_inc = t_inc.min(t.elapsed());
        let t = Instant::now();
        run_legacy();
        t_legacy = t_legacy.min(t.elapsed());
    }
    rec.link_pagerank_pages_per_s = pages / t_inc.as_secs_f64();
    rec.link_pagerank_legacy_pages_per_s = pages / t_legacy.as_secs_f64();
    println!(
        "  {:<40} min {:>10}  ({:.1} Mpages/s)",
        "pagerank_ordered_full_crawl",
        fmt(t_inc),
        rec.link_pagerank_pages_per_s / 1.0e6
    );
    println!(
        "  {:<40} min {:>10}  ({:.1} Mpages/s)",
        "legacy_pagerank_full_crawl",
        fmt(t_legacy),
        rec.link_pagerank_legacy_pages_per_s / 1.0e6
    );
    rec.link_speedup = t_legacy.as_secs_f64() / t_inc.as_secs_f64();
    rec.link_speedup_ok = rec.link_speedup >= 5.0;
    println!(
        "  incremental vs legacy end-to-end: {:.1}x  [{}]",
        rec.link_speedup,
        if rec.link_speedup_ok {
            "OK"
        } else {
            "BELOW 5x GATE"
        }
    );
}

/// The acceptance gate for the layered refactor: the event-sink seam
/// (Simulator = engine + metrics sink + report assembly) must cost no
/// more than 5% over the bare engine loop with no sinks attached. The
/// two configurations are timed *interleaved* so clock-frequency drift
/// and cache warmth hit both equally, and compared on per-config
/// minima — each minimum comes from an uncontended round, which is
/// what makes the ratio reproducible on a shared machine.
fn bench_sink_overhead(rec: &mut BenchRecord, scale: u32) {
    println!("engine sink overhead (n={scale}):");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(7);
    let oracle = OracleClassifier::target(ws.target_language());
    let engine = CrawlEngine::new(&ws, EngineConfig::default());

    let run_bare = || {
        let mut strategy = SimpleStrategy::soft();
        black_box(engine.run(
            UrlQueue::new(ws.num_pages(), strategy.levels()),
            &mut strategy,
            &oracle,
            &mut [],
        ))
    };
    let run_sinked = || {
        let mut sim = Simulator::new(&ws, SimConfig::default());
        black_box(sim.run(&mut SimpleStrategy::soft(), &oracle).crawled)
    };

    run_bare();
    run_sinked();
    let mut bare = Duration::MAX;
    let mut sinked = Duration::MAX;
    for _ in 0..40 {
        let t = Instant::now();
        run_bare();
        bare = bare.min(t.elapsed());
        let t = Instant::now();
        run_sinked();
        sinked = sinked.min(t.elapsed());
    }
    let overhead = sinked.as_secs_f64() / bare.as_secs_f64() - 1.0;
    rec.sink_overhead = overhead;
    rec.sink_overhead_ok = overhead <= 0.05;
    println!(
        "  bare engine {:>10}   simulator+sinks {:>10}   overhead {:+.1}%  [{}]",
        fmt(bare),
        fmt(sinked),
        100.0 * overhead,
        if rec.sink_overhead_ok {
            "OK"
        } else {
            "OVER BUDGET"
        }
    );
}

/// The acceptance gate for the fault/retry layer: a *zero-fault-rate*
/// fault config (host classes drawn, but every failure rate 0.0 so
/// nothing can ever fire) must cost no more than 10% over the plain
/// `FaultConfig::default()` loop. The engine earns this by eliding the
/// realized model when it is provably inert (`FaultModel::is_inert`) —
/// the gate exists to catch any regression of that fast path, e.g. an
/// eagerly allocated attempt table or unconditional retry-heap traffic
/// sneaking back into the zero-fault loop. Timed interleaved and
/// compared on per-config minima, like the sink-overhead gate.
fn bench_fault_overhead(rec: &mut BenchRecord, scale: u32) {
    println!("engine fault-path overhead (n={scale}):");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(7);
    let oracle = OracleClassifier::target(ws.target_language());
    let plain = CrawlEngine::new(&ws, EngineConfig::default());
    // A nonzero host-class fraction defeats `is_zero()` so every
    // fault-path branch runs, while the all-zero *rates* mean no fetch
    // ever fails — the retry machinery's pure overhead.
    let armed = CrawlEngine::new(
        &ws,
        EngineConfig {
            fault: FaultConfig {
                flaky_host_rate: 0.05,
                ..FaultConfig::default()
            },
            ..EngineConfig::default()
        },
    );

    let run = |engine: &CrawlEngine| {
        let mut strategy = SimpleStrategy::soft();
        black_box(
            engine
                .run(
                    UrlQueue::new(ws.num_pages(), strategy.levels()),
                    &mut strategy,
                    &oracle,
                    &mut [],
                )
                .crawled,
        )
    };

    let baseline = run(&plain);
    let faulted = run(&armed);
    assert_eq!(
        baseline, faulted,
        "a never-firing fault model must not change what gets crawled"
    );
    let mut t_plain = Duration::MAX;
    let mut t_armed = Duration::MAX;
    for _ in 0..120 {
        let t = Instant::now();
        run(&plain);
        t_plain = t_plain.min(t.elapsed());
        let t = Instant::now();
        run(&armed);
        t_armed = t_armed.min(t.elapsed());
    }
    let overhead = t_armed.as_secs_f64() / t_plain.as_secs_f64() - 1.0;
    rec.fault_overhead = overhead;
    rec.fault_overhead_ok = overhead <= 0.10;
    println!(
        "  zero-fault path {:>10}   retry machinery {:>10}   overhead {:+.1}%  [{}]",
        fmt(t_plain),
        fmt(t_armed),
        100.0 * overhead,
        if rec.fault_overhead_ok {
            "OK"
        } else {
            "OVER BUDGET"
        }
    );
}

/// The acceptance gate for the virtual-time scheduler: a default
/// (single-slot, politeness-free) scheduled run — bit-identical to the
/// legacy loop by the conformance suite — must cost no more than 5%
/// over that loop. The scheduler earns this with the tiered
/// degenerate-point elision (the host machinery provably cannot bite
/// at `K = 1` with zero politeness, and with no `SlotIdle`-interested
/// sink the schedule *is* the legacy loop, so `run_scheduled` runs it
/// verbatim — the same move as the fault layer's inert-model fast
/// path); the gate exists to catch that elision regressing. Timed
/// interleaved and compared on per-config minima, like the other
/// overhead gates.
fn bench_sched_overhead(rec: &mut BenchRecord, scale: u32) {
    println!("scheduler overhead at K=1 (n={scale}):");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(7);
    let oracle = OracleClassifier::target(ws.target_language());
    let engine = CrawlEngine::new(&ws, EngineConfig::default());
    let sched = SchedConfig::default();

    let run_legacy = || {
        let mut strategy = SimpleStrategy::soft();
        black_box(
            engine
                .run(
                    UrlQueue::new(ws.num_pages(), strategy.levels()),
                    &mut strategy,
                    &oracle,
                    &mut [],
                )
                .crawled,
        )
    };
    let run_sched = || {
        black_box(
            engine
                .run_scheduled(&sched, &mut SimpleStrategy::soft(), &oracle, &mut [])
                .crawled,
        )
    };

    let legacy_crawled = run_legacy();
    let sched_crawled = run_sched();
    assert_eq!(
        legacy_crawled, sched_crawled,
        "a K=1 politeness-free schedule must crawl exactly the legacy set"
    );
    let mut t_legacy = Duration::MAX;
    let mut t_sched = Duration::MAX;
    for _ in 0..40 {
        let t = Instant::now();
        run_legacy();
        t_legacy = t_legacy.min(t.elapsed());
        let t = Instant::now();
        run_sched();
        t_sched = t_sched.min(t.elapsed());
    }
    let overhead = t_sched.as_secs_f64() / t_legacy.as_secs_f64() - 1.0;
    rec.sched_overhead = overhead;
    rec.sched_overhead_ok = overhead <= 0.05;
    println!(
        "  legacy loop {:>10}   K=1 scheduler {:>10}   overhead {:+.1}%  [{}]",
        fmt(t_legacy),
        fmt(t_sched),
        100.0 * overhead,
        if rec.sched_overhead_ok {
            "OK"
        } else {
            "OVER BUDGET"
        }
    );
}

/// The acceptance gate for checkpoint capture: a multi-slot scheduled
/// run that snapshots its complete state every 1000 virtual ticks must
/// cost no more than 5% over the identical run without capture. The
/// capture path earns this by doing nothing at all between capture
/// ticks (one `u64` compare at the loop top) and by encoding into a
/// scheduler-owned reused buffer when one fires; the gate catches any
/// per-tick bookkeeping sneaking into the hot loop.
///
/// Statistic: the every-1000 cadence fires ~5 captures on a
/// multi-millisecond run — a signal smaller than a shared runner's
/// run-to-run jitter, so directly differencing the two arms at that
/// cadence does not reproduce (per-arm minima land on different
/// machine states; paired medians need hundreds of rounds to
/// converge). Capture cost itself is cadence-independent — each
/// capture encodes the same state the tick boundary exposes — so the
/// gate measures it where the signal dwarfs the noise, at every=100
/// (~50 captures, interleaved per-arm minima), and prices the
/// every-1000 cadence by scaling the measured capture cost with the
/// ratio of *measured* snapshot bytes between the two cadences. Both
/// cadences run real captures; only the timing happens on the
/// amplified one.
fn bench_snapshot_overhead(rec: &mut BenchRecord, scale: u32) {
    use langcrawl_core::SnapshotSink;
    println!("snapshot capture overhead at K=4, every=1000 (n={scale}):");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(7);
    let oracle = OracleClassifier::target(ws.target_language());
    let engine = CrawlEngine::new(&ws, EngineConfig::default());
    let sched = SchedConfig {
        slots: 4,
        ..SchedConfig::default()
    };

    /// Consumes snapshots at full speed without retaining them, so the
    /// measurement prices encode+frame, not sink-side accumulation.
    #[derive(Default)]
    struct CountSink {
        snaps: u64,
        bytes: u64,
    }
    impl SnapshotSink for CountSink {
        fn on_snapshot(&mut self, _tick: u64, bytes: &[u8]) {
            self.snaps += 1;
            self.bytes += bytes.len() as u64;
        }
    }

    let run_plain = || {
        black_box(
            engine
                .run_scheduled(&sched, &mut SimpleStrategy::soft(), &oracle, &mut [])
                .crawled,
        )
    };
    let run_capturing = |every: u64| {
        let mut sink = CountSink::default();
        let (outcome, _) = engine.run_scheduled_snapshots(
            &sched,
            &mut SimpleStrategy::soft(),
            &oracle,
            &mut [],
            every,
            &mut sink,
        );
        (black_box(outcome.crawled), sink)
    };

    let plain_crawled = run_plain();
    let (cap_crawled, gated) = run_capturing(1_000);
    assert_eq!(
        plain_crawled, cap_crawled,
        "snapshot capture must not change what gets crawled"
    );
    assert!(gated.snaps > 0, "cadence too coarse: nothing captured");
    let (_, amplified) = run_capturing(100);
    assert!(
        amplified.bytes > gated.bytes,
        "amplified cadence must capture more state than the gated one"
    );
    let measure = || {
        let mut t_plain = Duration::MAX;
        let mut t_amp = Duration::MAX;
        for _ in 0..40 {
            let t = Instant::now();
            run_plain();
            t_plain = t_plain.min(t.elapsed());
            let t = Instant::now();
            run_capturing(100);
            t_amp = t_amp.min(t.elapsed());
        }
        (t_plain, t_amp)
    };
    let (mut t_plain, mut t_amp) = measure();
    // Capture cost at the amplified cadence, priced down to the gated
    // cadence by the measured byte ratio (capture work scales with the
    // state each tick boundary exposes, and bytes are its measure).
    let price = |t_plain: Duration, t_amp: Duration| {
        let extra_amp = t_amp.saturating_sub(t_plain).as_nanos() as f64;
        let extra = extra_amp * gated.bytes as f64 / amplified.bytes as f64;
        (extra_amp, extra, extra / t_plain.as_nanos() as f64)
    };
    let (mut extra_amp, mut extra, mut overhead) = price(t_plain, t_amp);
    if overhead > 0.05 {
        // One remeasure: sustained machine-wide contention (another
        // tenant saturating memory bandwidth) inflates the capture arm
        // disproportionately and no within-process statistic can see
        // through it. A transient episode passes the second sample; a
        // genuine capture regression fails both.
        println!("  over budget on the first sample; remeasuring once");
        let (p2, a2) = measure();
        let (ea2, e2, o2) = price(p2, a2);
        if o2 < overhead {
            (t_plain, t_amp) = (p2, a2);
            (extra_amp, extra, overhead) = (ea2, e2, o2);
        }
    }
    rec.snapshot_overhead = overhead;
    rec.snapshot_overhead_ok = overhead <= 0.05;
    println!(
        "  no capture {:>10}   every-100 arm {:>10} ({} snapshots, {:.1} µs each)",
        fmt(t_plain),
        fmt(t_amp),
        amplified.snaps,
        extra_amp / 1.0e3 / amplified.snaps as f64,
    );
    println!(
        "  at every=1000: {} snapshots, {:.1} MB   extra {:.1} µs   overhead {:+.1}%  [{}]",
        gated.snaps,
        gated.bytes as f64 / 1.0e6,
        extra / 1.0e3,
        100.0 * overhead,
        if rec.snapshot_overhead_ok {
            "OK"
        } else {
            "OVER BUDGET"
        }
    );
}

/// The zero-allocation steady-state gate: after warm-up, a crawl fetch
/// must allocate *nothing*. Measured differentially — two deterministic
/// runs over one warm [`EngineScratch`], identical except that one
/// stops `TAIL` fetches short of the full crawl. Both runs pay the same
/// setup (fresh frontier, same buffer high-water marks, reached well
/// before the tail), so the allocation-count difference is exactly what
/// the final `TAIL` steady-state fetches allocate — which the gate
/// pins at zero. Without the `count-allocs` feature the counter always
/// reads 0 and the section reports "not gated".
fn bench_steady_state_allocs(rec: &mut BenchRecord, scale: u32) {
    use langcrawl_core::engine::EngineScratch;
    println!("steady-state allocations (n={scale}):");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(7);
    let oracle = OracleClassifier::target(ws.target_language());
    const TAIL: u64 = 1_000;

    let mut scratch = EngineScratch::new();
    let run = |budget: Option<u64>, scratch: &mut EngineScratch| {
        let engine = CrawlEngine::new(
            &ws,
            EngineConfig {
                max_pages: budget,
                ..EngineConfig::default()
            },
        );
        let mut strategy = SimpleStrategy::soft();
        black_box(
            engine
                .run_with_scratch(
                    UrlQueue::new(ws.num_pages(), strategy.levels()),
                    &mut strategy,
                    &oracle,
                    &mut [],
                    scratch,
                )
                .crawled,
        )
    };

    // Warm-up run: grows every scratch buffer to its high-water size
    // and reports the full crawl length.
    let full = run(None, &mut scratch);
    assert!(full > 2 * TAIL, "space too small for the tail measurement");

    let a0 = alloc_count();
    let short = run(Some(full - TAIL), &mut scratch);
    let a1 = alloc_count();
    let again = run(Some(full), &mut scratch);
    let a2 = alloc_count();
    assert_eq!(short, full - TAIL);
    assert_eq!(again, full);

    // The truncated run is a strict prefix of the full run, so the full
    // run can only allocate at least as much; the excess is what the
    // tail fetches allocated.
    let tail_allocs = (a2 - a1).saturating_sub(a1 - a0);
    rec.steady_state_allocs_per_fetch = tail_allocs as f64 / TAIL as f64;
    rec.steady_state_gated = COUNTING_ALLOCS;
    rec.steady_state_ok = !COUNTING_ALLOCS || tail_allocs == 0;
    println!(
        "  tail {TAIL} fetches: {tail_allocs} allocations ({:.4}/fetch)  [{}]",
        rec.steady_state_allocs_per_fetch,
        if !COUNTING_ALLOCS {
            "not gated: counting allocator off"
        } else if rec.steady_state_ok {
            "OK"
        } else {
            "ALLOCATES"
        }
    );
}

fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "nogit".into())
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let scale = env_scale(50_000);
    let mut rec = BenchRecord::default();
    // Per-phase allocation counts (meaningful only with the counting
    // allocator compiled in): one cumulative mark after each section,
    // reported as deltas at the end.
    let mut marks: Vec<(&'static str, u64)> = Vec::new();
    let mark = |name: &'static str, marks: &mut Vec<(&'static str, u64)>| {
        marks.push((name, alloc_count()));
    };
    mark("start", &mut marks);
    bench_queue(&mut rec);
    mark("queue", &mut marks);
    bench_batch_admit(&mut rec);
    mark("batch_admit", &mut marks);
    bench_detect(&mut rec);
    mark("detect", &mut marks);
    bench_html();
    bench_url();
    mark("html+url", &mut marks);
    bench_generate();
    bench_generate_parallel(&mut rec);
    mark("generate", &mut marks);
    bench_simulate(&mut rec, scale);
    mark("simulate", &mut marks);
    bench_link_analysis(&mut rec, scale);
    mark("link_analysis", &mut marks);
    bench_sink_overhead(&mut rec, scale);
    bench_fault_overhead(&mut rec, scale);
    bench_sched_overhead(&mut rec, scale);
    bench_snapshot_overhead(&mut rec, scale);
    mark("overhead_gates", &mut marks);
    bench_steady_state_allocs(&mut rec, scale);
    mark("steady_state", &mut marks);

    if COUNTING_ALLOCS {
        println!("\nallocations per phase (count-allocs):");
        for pair in marks.windows(2) {
            let (name, after) = pair[1];
            println!("  {name:<20} {:>12}", after - pair[0].1);
        }
    }

    if json {
        // Land the trajectory point at the workspace root regardless of
        // the cwd cargo gives bench binaries (the package dir).
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("bench crate lives two levels below the workspace root")
            .to_path_buf();
        let path = root.join(format!("BENCH_{}.json", git_short_sha()));
        let body = rec.to_json(&git_short_sha(), scale);
        match std::fs::write(&path, &body) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("\ncannot write {}: {e}", path.display()),
        }
    }
    let failures = rec.failures();
    for f in &failures {
        eprintln!("GATE FAILED: {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
