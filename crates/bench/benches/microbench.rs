//! Self-contained microbenches for the hot paths of the stack: URL
//! queue operations, charset detection, HTML link extraction, web-space
//! generation (sequential and parallel), end-to-end simulator
//! throughput — and the cost of the event-sink seam the layered engine
//! introduced.
//!
//! These are the numbers that justify the perf-relevant design choices
//! in DESIGN.md (bucketed queue, CSR graph, byte-level HTML scanning,
//! monomorphic engine loop, per-host-stream parallel generation). No
//! external harness: each bench warms up, runs until a fixed time
//! budget, and reports min/median wall time. `LANGCRAWL_SCALE` sets the
//! space size for the simulator benches (default 50k here; the
//! DESIGN.md overhead figure uses 200k).
//!
//! With `--json`, additionally writes a machine-readable trajectory
//! point `BENCH_<git-short-sha>.json` (generation / queue / detector /
//! end-to-end throughput plus the gate verdicts) so CI can archive one
//! bench record per commit. The gates — sink overhead ≤ 5%, parallel
//! generation bit-parity, ≥2× generation speedup on 4+ cores,
//! retry-machinery overhead ≤ 10% at zero fault rate, and single-slot
//! scheduler overhead ≤ 5% over the legacy loop — fail the process
//! with a nonzero exit either way.

use langcrawl_bench::runner::env_scale;
use langcrawl_charset::encode::{
    encode_japanese, encode_thai, japanese_demo_tokens, thai_demo_tokens,
};
use langcrawl_charset::{detect, Charset};
use langcrawl_core::classifier::OracleClassifier;
use langcrawl_core::queue::{Entry, UrlQueue};
use langcrawl_core::sched::SchedConfig;
use langcrawl_core::sim::{SimConfig, Simulator};
use langcrawl_core::strategy::{LimitedDistanceStrategy, SimpleStrategy, Strategy};
use langcrawl_core::{CrawlEngine, EngineConfig};
use langcrawl_html::{extract_links, extract_meta_charset};
use langcrawl_url::{normalize, resolve, Url};
use langcrawl_webgraph::generate::generate_with_threads;
use langcrawl_webgraph::parallel::effective_threads;
use langcrawl_webgraph::{FaultConfig, GeneratorConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Run `f` repeatedly for ~`budget`, after one warmup call. Returns the
/// per-iteration minimum and median.
fn measure<R>(budget: Duration, mut f: impl FnMut() -> R) -> (Duration, Duration) {
    black_box(f());
    let mut times = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget || times.len() < 3 {
        let t = Instant::now();
        black_box(f());
        times.push(t.elapsed());
        if times.len() >= 1_000 {
            break;
        }
    }
    times.sort();
    (times[0], times[times.len() / 2])
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    }
}

/// One bench line: name, timings, optional throughput from `units/iter`.
/// Returns units-per-second from the median (0.0 when `units` is None).
fn bench<R>(name: &str, units: Option<(f64, &str)>, f: impl FnMut() -> R) -> f64 {
    let (min, median) = measure(Duration::from_millis(200), f);
    let mut per_sec = 0.0;
    let rate = match units {
        Some((n, unit)) => {
            per_sec = n / median.as_secs_f64();
            format!("  ({:.1} M{unit}/s)", per_sec / 1.0e6)
        }
        None => String::new(),
    };
    println!(
        "  {name:<40} min {:>10}  median {:>10}{rate}",
        fmt(min),
        fmt(median)
    );
    per_sec
}

/// The machine-readable trajectory point `--json` emits, plus the gate
/// verdicts that decide the exit code.
#[derive(Default)]
struct BenchRecord {
    queue_ops_per_s: f64,
    detector_bytes_per_s: f64,
    generation_pages_per_s_1t: f64,
    generation_pages_per_s: f64,
    generation_speedup: f64,
    generation_threads: usize,
    thread_parity_ok: bool,
    speedup_gated: bool,
    speedup_ok: bool,
    simulator_pages_per_s: f64,
    sink_overhead: f64,
    sink_overhead_ok: bool,
    fault_overhead: f64,
    fault_overhead_ok: bool,
    sched_overhead: f64,
    sched_overhead_ok: bool,
}

impl BenchRecord {
    fn failures(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if !self.thread_parity_ok {
            out.push("parallel generation is not bit-identical across thread counts");
        }
        if self.speedup_gated && !self.speedup_ok {
            out.push("parallel generation speedup below 2x on 4+ cores");
        }
        if !self.sink_overhead_ok {
            out.push("event-sink seam overhead above the 5% budget");
        }
        if !self.fault_overhead_ok {
            out.push("retry machinery overhead above the 10% budget at zero fault rate");
        }
        if !self.sched_overhead_ok {
            out.push("single-slot scheduler overhead above the 5% budget over the legacy loop");
        }
        out
    }

    fn to_json(&self, git: &str, scale: u32) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"git\": \"{git}\",\n",
                "  \"scale\": {scale},\n",
                "  \"queue_ops_per_s\": {queue:.0},\n",
                "  \"detector_bytes_per_s\": {det:.0},\n",
                "  \"generation\": {{\n",
                "    \"pages_per_s_1t\": {g1:.0},\n",
                "    \"pages_per_s\": {gn:.0},\n",
                "    \"speedup\": {sp:.3},\n",
                "    \"threads\": {th}\n",
                "  }},\n",
                "  \"simulator_pages_per_s\": {sim:.0},\n",
                "  \"sink_overhead\": {ov:.4},\n",
                "  \"fault_overhead\": {fov:.4},\n",
                "  \"sched_overhead\": {sov:.4},\n",
                "  \"gates\": {{\n",
                "    \"thread_parity_ok\": {par},\n",
                "    \"speedup_gated\": {spg},\n",
                "    \"speedup_ok\": {spok},\n",
                "    \"sink_overhead_ok\": {ovok},\n",
                "    \"fault_overhead_ok\": {fovok},\n",
                "    \"sched_overhead_ok\": {sovok}\n",
                "  }}\n",
                "}}\n"
            ),
            git = git,
            scale = scale,
            queue = self.queue_ops_per_s,
            det = self.detector_bytes_per_s,
            g1 = self.generation_pages_per_s_1t,
            gn = self.generation_pages_per_s,
            sp = self.generation_speedup,
            th = self.generation_threads,
            sim = self.simulator_pages_per_s,
            ov = self.sink_overhead,
            fov = self.fault_overhead,
            sov = self.sched_overhead,
            par = self.thread_parity_ok,
            spg = self.speedup_gated,
            spok = self.speedup_ok,
            ovok = self.sink_overhead_ok,
            fovok = self.fault_overhead_ok,
            sovok = self.sched_overhead_ok,
        )
    }
}

fn bench_queue(rec: &mut BenchRecord) {
    println!("queue:");
    rec.queue_ops_per_s = bench("push_pop_100k_2levels", Some((100_000.0, "ops")), || {
        let mut q = UrlQueue::new(100_000, 2);
        for i in 0..100_000u32 {
            q.push(Entry {
                page: i,
                priority: (i % 2) as u8,
                distance: 0,
            });
        }
        let mut n = 0u32;
        while let Some(e) = q.pop() {
            n = n.wrapping_add(e.page);
        }
        n
    });
    bench(
        "push_pop_100k_reprioritized",
        Some((200_000.0, "ops")),
        || {
            let mut q = UrlQueue::new(100_000, 5);
            // Every page admitted twice: low priority then high.
            for i in 0..100_000u32 {
                q.push(Entry {
                    page: i,
                    priority: 4,
                    distance: 4,
                });
            }
            for i in 0..100_000u32 {
                q.push(Entry {
                    page: i,
                    priority: 0,
                    distance: 0,
                });
            }
            let mut n = 0u32;
            while let Some(e) = q.pop() {
                n = n.wrapping_add(e.page);
            }
            n
        },
    );
}

fn bench_detect(rec: &mut BenchRecord) {
    println!("charset_detect:");
    let ja = japanese_demo_tokens();
    let ja: Vec<_> = ja.iter().cycle().take(2_000).copied().collect();
    let th = thai_demo_tokens();
    let th: Vec<_> = th.iter().cycle().take(2_000).copied().collect();
    let cases = [
        ("eucjp", encode_japanese(&ja, Charset::EucJp)),
        ("sjis", encode_japanese(&ja, Charset::ShiftJis)),
        ("iso2022jp", encode_japanese(&ja, Charset::Iso2022Jp)),
        ("utf8_ja", encode_japanese(&ja, Charset::Utf8)),
        ("tis620", encode_thai(&th, Charset::Tis620)),
        (
            "ascii",
            b"the quick brown fox jumps over the lazy dog. "
                .repeat(80)
                .to_vec(),
        ),
    ];
    let mut total = 0.0;
    for (name, bytes) in &cases {
        total += bench(name, Some((bytes.len() as f64, "B")), || {
            detect(black_box(bytes)).charset
        });
    }
    rec.detector_bytes_per_s = total / cases.len() as f64;
}

fn bench_html() {
    println!("html:");
    let mut page = String::from(
        r#"<html><head><meta http-equiv="content-type" content="text/html; charset=tis-620"><title>x</title></head><body>"#,
    );
    for i in 0..200 {
        page.push_str(&format!(
            r#"<p>lorem ipsum dolor sit amet</p><a href="/dir{}/page{}.html">link</a>"#,
            i % 17,
            i
        ));
    }
    page.push_str("</body></html>");
    let bytes = page.into_bytes();
    let base = Url::parse("http://www.example.co.th/index.html").unwrap();
    bench("extract_links_200", Some((bytes.len() as f64, "B")), || {
        extract_links(black_box(&bytes), &base).len()
    });
    bench("extract_meta", Some((bytes.len() as f64, "B")), || {
        extract_meta_charset(black_box(&bytes))
    });
}

fn bench_url() {
    println!("url:");
    let base = Url::parse("http://www.example.ac.th/a/b/c.html").unwrap();
    bench("resolve_relative", None, || {
        resolve(&base, black_box("../img/x/../y.gif"))
    });
    let u = Url::parse("HTTP://Example.AC.TH:80/a/./b/%7Euser/index.html?x=1").unwrap();
    bench("normalize", None, || normalize(black_box(&u)));
}

fn bench_generate() {
    println!("webgraph_generate:");
    for scale in [10_000u32, 50_000] {
        bench(
            &format!("thai_like_{scale}"),
            Some((scale as f64, "URLs")),
            || {
                GeneratorConfig::thai_like()
                    .scaled(scale)
                    .build(7)
                    .num_edges()
            },
        );
    }
}

/// Parallel generation: 1 thread vs all available, on the 200k figure
/// preset. Checks bit-parity between the two spaces (the
/// thread-count-independence contract) and, on 4+ cores, gates a ≥2×
/// speedup.
fn bench_generate_parallel(rec: &mut BenchRecord) {
    let threads = effective_threads();
    let scale = 200_000u32;
    let cfg = GeneratorConfig::thai_like().scaled(scale);
    println!("webgraph_generate_parallel (n={scale}, threads={threads}):");

    let time_min = |t: usize| {
        let mut best = Duration::MAX;
        let mut hash = 0u64;
        for _ in 0..3 {
            let t0 = Instant::now();
            let ws = generate_with_threads(&cfg, 7, t);
            best = best.min(t0.elapsed());
            hash = ws.content_hash();
        }
        (best, hash)
    };
    let (t1, h1) = time_min(1);
    let (tn, hn) = time_min(threads);

    rec.generation_threads = threads;
    rec.generation_pages_per_s_1t = scale as f64 / t1.as_secs_f64();
    rec.generation_pages_per_s = scale as f64 / tn.as_secs_f64();
    rec.generation_speedup = t1.as_secs_f64() / tn.as_secs_f64();
    rec.thread_parity_ok = h1 == hn;
    rec.speedup_gated = threads >= 4;
    rec.speedup_ok = rec.generation_speedup >= 2.0;

    println!(
        "  1 thread  {:>10}   ({:.2} M pages generated/s)",
        fmt(t1),
        rec.generation_pages_per_s_1t / 1.0e6
    );
    println!(
        "  {threads} threads {:>10}   ({:.2} M pages generated/s)",
        fmt(tn),
        rec.generation_pages_per_s / 1.0e6
    );
    println!(
        "  speedup {:.2}x  [{}]   thread parity [{}]",
        rec.generation_speedup,
        if !rec.speedup_gated {
            "not gated below 4 cores"
        } else if rec.speedup_ok {
            "OK"
        } else {
            "BELOW 2x"
        },
        if rec.thread_parity_ok {
            "OK"
        } else {
            "MISMATCH"
        },
    );
}

fn bench_simulate(rec: &mut BenchRecord, scale: u32) {
    println!("simulate (n={scale}):");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(7);
    let oracle = OracleClassifier::target(ws.target_language());
    let pages = ws.num_pages() as f64;
    rec.simulator_pages_per_s = bench("soft_focused_full_crawl", Some((pages, "pages")), || {
        let mut sim = Simulator::new(&ws, SimConfig::default());
        sim.run(&mut SimpleStrategy::soft(), &oracle).crawled
    });
    bench(
        "prioritized_limited3_full_crawl",
        Some((pages, "pages")),
        || {
            let mut sim = Simulator::new(&ws, SimConfig::default());
            sim.run(&mut LimitedDistanceStrategy::prioritized(3), &oracle)
                .crawled
        },
    );
}

/// The acceptance gate for the layered refactor: the event-sink seam
/// (Simulator = engine + metrics sink + report assembly) must cost no
/// more than 5% over the bare engine loop with no sinks attached. The
/// two configurations are timed *interleaved* so clock-frequency drift
/// and cache warmth hit both equally, and compared on per-config
/// minima — each minimum comes from an uncontended round, which is
/// what makes the ratio reproducible on a shared machine.
fn bench_sink_overhead(rec: &mut BenchRecord, scale: u32) {
    println!("engine sink overhead (n={scale}):");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(7);
    let oracle = OracleClassifier::target(ws.target_language());
    let engine = CrawlEngine::new(&ws, EngineConfig::default());

    let run_bare = || {
        let mut strategy = SimpleStrategy::soft();
        black_box(engine.run(
            UrlQueue::new(ws.num_pages(), strategy.levels()),
            &mut strategy,
            &oracle,
            &mut [],
        ))
    };
    let run_sinked = || {
        let mut sim = Simulator::new(&ws, SimConfig::default());
        black_box(sim.run(&mut SimpleStrategy::soft(), &oracle).crawled)
    };

    run_bare();
    run_sinked();
    let mut bare = Duration::MAX;
    let mut sinked = Duration::MAX;
    for _ in 0..40 {
        let t = Instant::now();
        run_bare();
        bare = bare.min(t.elapsed());
        let t = Instant::now();
        run_sinked();
        sinked = sinked.min(t.elapsed());
    }
    let overhead = sinked.as_secs_f64() / bare.as_secs_f64() - 1.0;
    rec.sink_overhead = overhead;
    rec.sink_overhead_ok = overhead <= 0.05;
    println!(
        "  bare engine {:>10}   simulator+sinks {:>10}   overhead {:+.1}%  [{}]",
        fmt(bare),
        fmt(sinked),
        100.0 * overhead,
        if rec.sink_overhead_ok {
            "OK"
        } else {
            "OVER BUDGET"
        }
    );
}

/// The acceptance gate for the fault/retry layer: a *zero-fault-rate*
/// fault config (host classes drawn, but every failure rate 0.0 so
/// nothing can ever fire) must cost no more than 10% over the plain
/// `FaultConfig::default()` loop. The engine earns this by eliding the
/// realized model when it is provably inert (`FaultModel::is_inert`) —
/// the gate exists to catch any regression of that fast path, e.g. an
/// eagerly allocated attempt table or unconditional retry-heap traffic
/// sneaking back into the zero-fault loop. Timed interleaved and
/// compared on per-config minima, like the sink-overhead gate.
fn bench_fault_overhead(rec: &mut BenchRecord, scale: u32) {
    println!("engine fault-path overhead (n={scale}):");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(7);
    let oracle = OracleClassifier::target(ws.target_language());
    let plain = CrawlEngine::new(&ws, EngineConfig::default());
    // A nonzero host-class fraction defeats `is_zero()` so every
    // fault-path branch runs, while the all-zero *rates* mean no fetch
    // ever fails — the retry machinery's pure overhead.
    let armed = CrawlEngine::new(
        &ws,
        EngineConfig {
            fault: FaultConfig {
                flaky_host_rate: 0.05,
                ..FaultConfig::default()
            },
            ..EngineConfig::default()
        },
    );

    let run = |engine: &CrawlEngine| {
        let mut strategy = SimpleStrategy::soft();
        black_box(
            engine
                .run(
                    UrlQueue::new(ws.num_pages(), strategy.levels()),
                    &mut strategy,
                    &oracle,
                    &mut [],
                )
                .crawled,
        )
    };

    let baseline = run(&plain);
    let faulted = run(&armed);
    assert_eq!(
        baseline, faulted,
        "a never-firing fault model must not change what gets crawled"
    );
    let mut t_plain = Duration::MAX;
    let mut t_armed = Duration::MAX;
    for _ in 0..120 {
        let t = Instant::now();
        run(&plain);
        t_plain = t_plain.min(t.elapsed());
        let t = Instant::now();
        run(&armed);
        t_armed = t_armed.min(t.elapsed());
    }
    let overhead = t_armed.as_secs_f64() / t_plain.as_secs_f64() - 1.0;
    rec.fault_overhead = overhead;
    rec.fault_overhead_ok = overhead <= 0.10;
    println!(
        "  zero-fault path {:>10}   retry machinery {:>10}   overhead {:+.1}%  [{}]",
        fmt(t_plain),
        fmt(t_armed),
        100.0 * overhead,
        if rec.fault_overhead_ok {
            "OK"
        } else {
            "OVER BUDGET"
        }
    );
}

/// The acceptance gate for the virtual-time scheduler: a default
/// (single-slot, politeness-free) scheduled run — bit-identical to the
/// legacy loop by the conformance suite — must cost no more than 5%
/// over that loop. The scheduler earns this with the tiered
/// degenerate-point elision (the host machinery provably cannot bite
/// at `K = 1` with zero politeness, and with no `SlotIdle`-interested
/// sink the schedule *is* the legacy loop, so `run_scheduled` runs it
/// verbatim — the same move as the fault layer's inert-model fast
/// path); the gate exists to catch that elision regressing. Timed
/// interleaved and compared on per-config minima, like the other
/// overhead gates.
fn bench_sched_overhead(rec: &mut BenchRecord, scale: u32) {
    println!("scheduler overhead at K=1 (n={scale}):");
    let ws = GeneratorConfig::thai_like().scaled(scale).build(7);
    let oracle = OracleClassifier::target(ws.target_language());
    let engine = CrawlEngine::new(&ws, EngineConfig::default());
    let sched = SchedConfig::default();

    let run_legacy = || {
        let mut strategy = SimpleStrategy::soft();
        black_box(
            engine
                .run(
                    UrlQueue::new(ws.num_pages(), strategy.levels()),
                    &mut strategy,
                    &oracle,
                    &mut [],
                )
                .crawled,
        )
    };
    let run_sched = || {
        black_box(
            engine
                .run_scheduled(&sched, &mut SimpleStrategy::soft(), &oracle, &mut [])
                .crawled,
        )
    };

    let legacy_crawled = run_legacy();
    let sched_crawled = run_sched();
    assert_eq!(
        legacy_crawled, sched_crawled,
        "a K=1 politeness-free schedule must crawl exactly the legacy set"
    );
    let mut t_legacy = Duration::MAX;
    let mut t_sched = Duration::MAX;
    for _ in 0..40 {
        let t = Instant::now();
        run_legacy();
        t_legacy = t_legacy.min(t.elapsed());
        let t = Instant::now();
        run_sched();
        t_sched = t_sched.min(t.elapsed());
    }
    let overhead = t_sched.as_secs_f64() / t_legacy.as_secs_f64() - 1.0;
    rec.sched_overhead = overhead;
    rec.sched_overhead_ok = overhead <= 0.05;
    println!(
        "  legacy loop {:>10}   K=1 scheduler {:>10}   overhead {:+.1}%  [{}]",
        fmt(t_legacy),
        fmt(t_sched),
        100.0 * overhead,
        if rec.sched_overhead_ok {
            "OK"
        } else {
            "OVER BUDGET"
        }
    );
}

fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "nogit".into())
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let scale = env_scale(50_000);
    let mut rec = BenchRecord::default();
    bench_queue(&mut rec);
    bench_detect(&mut rec);
    bench_html();
    bench_url();
    bench_generate();
    bench_generate_parallel(&mut rec);
    bench_simulate(&mut rec, scale);
    bench_sink_overhead(&mut rec, scale);
    bench_fault_overhead(&mut rec, scale);
    bench_sched_overhead(&mut rec, scale);

    if json {
        // Land the trajectory point at the workspace root regardless of
        // the cwd cargo gives bench binaries (the package dir).
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("bench crate lives two levels below the workspace root")
            .to_path_buf();
        let path = root.join(format!("BENCH_{}.json", git_short_sha()));
        let body = rec.to_json(&git_short_sha(), scale);
        match std::fs::write(&path, &body) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("\ncannot write {}: {e}", path.display()),
        }
    }
    let failures = rec.failures();
    for f in &failures {
        eprintln!("GATE FAILED: {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
