//! Edge cases and failure injection: degenerate spaces, adversarial
//! labels, and boundary configurations the figure runs never hit.

use langcrawl::prelude::*;
use langcrawl::webgraph::builder::WebSpaceBuilder;

fn crawl(ws: &WebSpace, s: &mut dyn Strategy) -> CrawlReport {
    Simulator::new(ws, SimConfig::default()).run(s, &MetaClassifier::target(Language::Thai))
}

/// Every page lies about its charset: the META classifier sees nothing
/// relevant, so hard-focused dies right after the seeds while soft still
/// covers everything (admission in soft mode never requires relevance).
#[test]
fn universally_mislabeled_space() {
    let mut b = WebSpaceBuilder::new(Language::Thai);
    b.host("www.a.co.th", Language::Thai);
    let pages: Vec<_> = (0..6).map(|_| b.page(Language::Thai)).collect();
    b.chain(&pages).seed(pages[0]);
    for &p in &pages {
        b.relabel(p, Some(Charset::Latin1));
    }
    let ws = b.build();

    let hard = crawl(&ws, &mut SimpleStrategy::hard());
    // Seed fetched, judged irrelevant, links discarded.
    assert_eq!(hard.crawled, 1);
    let soft = crawl(&ws, &mut SimpleStrategy::soft());
    assert_eq!(soft.crawled, 6);
    assert!((soft.final_coverage() - 1.0).abs() < 1e-12);
    // Metrics use ground truth, so harvest is 100% despite the labels.
    assert!((soft.final_harvest() - 1.0).abs() < 1e-12);
}

/// Pages with no META at all: same failure mode, one-sidedly.
#[test]
fn label_free_space() {
    let mut b = WebSpaceBuilder::new(Language::Thai);
    b.host("www.a.co.th", Language::Thai);
    let p0 = b.page(Language::Thai);
    let p1 = b.page(Language::Thai);
    b.link(p0, p1).seed(p0);
    b.relabel(p0, None).relabel(p1, None);
    let ws = b.build();
    let hard = crawl(&ws, &mut SimpleStrategy::hard());
    assert_eq!(
        hard.crawled, 1,
        "no label ⇒ judged irrelevant ⇒ no expansion"
    );
    // The oracle is unaffected by labels.
    let r = Simulator::new(&ws, SimConfig::default()).run(
        &mut SimpleStrategy::hard(),
        &OracleClassifier::target(Language::Thai),
    );
    assert_eq!(r.crawled, 2);
}

/// A single-page web space.
#[test]
fn single_page_space() {
    let mut b = WebSpaceBuilder::new(Language::Thai);
    b.host("www.only.co.th", Language::Thai);
    let p = b.page(Language::Thai);
    b.seed(p);
    let ws = b.build();
    for s in [0u8, 1] {
        let mut strat: Box<dyn Strategy> = if s == 0 {
            Box::new(BreadthFirst::new())
        } else {
            Box::new(LimitedDistanceStrategy::prioritized(4))
        };
        let r = crawl(&ws, strat.as_mut());
        assert_eq!(r.crawled, 1);
        assert!((r.final_coverage() - 1.0).abs() < 1e-12);
        assert_eq!(r.max_queue, 1);
    }
}

/// Link cycles must terminate (visited-set dedup).
#[test]
fn cycles_terminate() {
    let mut b = WebSpaceBuilder::new(Language::Thai);
    b.host("www.loop.co.th", Language::Thai);
    let p0 = b.page(Language::Thai);
    let p1 = b.page(Language::Thai);
    let p2 = b.page(Language::Thai);
    b.chain(&[p0, p1, p2]);
    b.link(p2, p0); // close the cycle
    b.link(p1, p1); // self-loop
    b.seed(p0);
    let ws = b.build();
    let r = crawl(&ws, &mut SimpleStrategy::soft());
    assert_eq!(r.crawled, 3);
}

/// Duplicate seeds and duplicate links are both tolerated.
#[test]
fn duplicate_seeds_and_links() {
    let mut b = WebSpaceBuilder::new(Language::Thai);
    b.host("www.dup.co.th", Language::Thai);
    let p0 = b.page(Language::Thai);
    let p1 = b.page(Language::Thai);
    b.link(p0, p1).link(p0, p1).link(p0, p1);
    b.seed(p0).seed(p0);
    let ws = b.build();
    let r = crawl(&ws, &mut BreadthFirst::new());
    assert_eq!(r.crawled, 2);
}

/// Near-degenerate generator configs still produce valid, crawlable
/// spaces at both relevance extremes.
#[test]
fn generator_extremes() {
    for relevance in [0.05f64, 0.92] {
        let mut cfg = GeneratorConfig::thai_like().scaled(3_000);
        cfg.relevance_ratio = relevance;
        // Keep purity above the ratio's implied host fraction bounds.
        cfg.host_purity = 0.95;
        let ws = cfg.build(13);
        ws.check_invariants().unwrap();
        let r = crawl(&ws, &mut SimpleStrategy::soft());
        assert!(
            (r.final_coverage() - 1.0).abs() < 1e-9,
            "relevance {relevance}"
        );
    }
}

/// A crawl budget of 1 fetches exactly the first seed and reports sanely.
#[test]
fn budget_of_one() {
    let ws = GeneratorConfig::thai_like().scaled(2_000).build(3);
    let mut sim = Simulator::new(&ws, SimConfig::default().with_max_pages(1));
    let r = sim.run(
        &mut SimpleStrategy::soft(),
        &MetaClassifier::target(Language::Thai),
    );
    assert_eq!(r.crawled, 1);
    assert!(r.final_harvest() <= 1.0);
    assert_eq!(r.samples.last().unwrap().crawled, 1);
}

/// Limited-distance with N = u8::MAX behaves like soft coverage-wise
/// (saturating arithmetic must not wrap).
#[test]
fn saturating_distance_arithmetic() {
    let ws = GeneratorConfig::thai_like().scaled(2_000).build(3);
    let soft = crawl(&ws, &mut SimpleStrategy::soft());
    let huge = crawl(&ws, &mut LimitedDistanceStrategy::non_prioritized(u8::MAX));
    assert_eq!(huge.relevant_crawled, soft.relevant_crawled);
    assert_eq!(huge.crawled, soft.crawled);
}
