//! Trace-driven property: a crawl log written to disk and replayed must
//! drive the simulator to *identical* results — the paper's argument for
//! simulator-based evaluation ("impossible to ensure that all strategies
//! are compared under the same conditions" on the live web, §4).

use langcrawl::prelude::*;
use langcrawl::webgraph::logs::{read_log, write_log};
use std::io::BufReader;

#[test]
fn replayed_log_drives_identical_crawls() {
    let original = GeneratorConfig::thai_like().scaled(6_000).build(123);

    let mut buf = Vec::new();
    write_log(&original, &mut buf).unwrap();
    let replayed = read_log(BufReader::new(&buf[..])).unwrap();

    let classifier = MetaClassifier::target(Language::Thai);
    for build in [0u8, 1, 2] {
        let mut a_strat: Box<dyn Strategy> = match build {
            0 => Box::new(SimpleStrategy::soft()),
            1 => Box::new(SimpleStrategy::hard()),
            _ => Box::new(LimitedDistanceStrategy::prioritized(2)),
        };
        let mut b_strat: Box<dyn Strategy> = match build {
            0 => Box::new(SimpleStrategy::soft()),
            1 => Box::new(SimpleStrategy::hard()),
            _ => Box::new(LimitedDistanceStrategy::prioritized(2)),
        };
        let a = Simulator::new(&original, SimConfig::default()).run(a_strat.as_mut(), &classifier);
        let b = Simulator::new(&replayed, SimConfig::default()).run(b_strat.as_mut(), &classifier);
        assert_eq!(a.samples, b.samples, "strategy #{build}");
        assert_eq!(a.crawled, b.crawled);
        assert_eq!(a.relevant_crawled, b.relevant_crawled);
        assert_eq!(a.max_queue, b.max_queue);
    }
}

#[test]
fn log_round_trip_through_disk() {
    let original = GeneratorConfig::japanese_like().scaled(4_000).build(5);
    let path = std::env::temp_dir().join(format!("langcrawl_itest_{}.log", std::process::id()));
    write_log(&original, std::fs::File::create(&path).unwrap()).unwrap();
    let replayed = read_log(BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(replayed.num_pages(), original.num_pages());
    assert_eq!(replayed.num_edges(), original.num_edges());
    assert_eq!(replayed.seeds(), original.seeds());
    assert_eq!(replayed.total_relevant(), original.total_relevant());
    replayed.check_invariants().unwrap();
}

#[test]
fn content_synthesis_survives_replay() {
    // Replayed spaces carry the generation seed, so content-mode bytes
    // are identical too.
    let original = GeneratorConfig::thai_like().scaled(2_000).build(77);
    let mut buf = Vec::new();
    write_log(&original, &mut buf).unwrap();
    let replayed = read_log(BufReader::new(&buf[..])).unwrap();
    for p in original.page_ids().step_by(97) {
        assert_eq!(original.synthesize_page(p), replayed.synthesize_page(p));
    }
}
