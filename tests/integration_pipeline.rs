//! Full-stack integration: the crawl pipeline run over *rendered page
//! bytes* — HTML synthesis → META/byte-charset classification → link
//! extraction → URL resolution → frontier — must reproduce what the
//! metadata-mode simulator computes from the graph directly.

use langcrawl::core::queue::Entry;
use langcrawl::prelude::*;
use langcrawl::webgraph::{PageId, PageKind, WebSpace};
use langcrawl_html::{extract_links, extract_meta_charset};
use langcrawl_url::{normalize, Url};
use std::collections::HashMap;

fn space() -> WebSpace {
    GeneratorConfig::thai_like().scaled(2_500).build(99)
}

/// A content-mode crawler: everything the simulator normally reads from
/// the trace is recovered from synthesized page bytes instead.
fn content_mode_crawl(ws: &WebSpace) -> (u64, u64) {
    // URL index: canonical URL string → page id (what a real frontier's
    // seen-set does).
    let index: HashMap<String, PageId> = ws
        .page_ids()
        .map(|p| {
            (
                normalize(&Url::parse(&ws.url(p)).expect("generator urls parse")),
                p,
            )
        })
        .collect();
    assert_eq!(index.len(), ws.num_pages(), "generator URLs must be unique");

    let mut queue: std::collections::VecDeque<PageId> = ws.seeds().iter().copied().collect();
    let mut seen: Vec<bool> = vec![false; ws.num_pages()];
    for &s in ws.seeds() {
        seen[s as usize] = true;
    }
    let mut crawled = 0u64;
    let mut relevant = 0u64;
    while let Some(p) = queue.pop_front() {
        crawled += 1;
        let bytes = ws.synthesize_page(p);
        // Classify from bytes only: META first, detector second (§3.2).
        let lang = extract_meta_charset(&bytes)
            .and_then(|cs| cs.language())
            .or_else(|| detect(&bytes).language());
        if lang == Some(ws.target_language()) {
            relevant += 1;
        }
        if ws.meta(p).kind != PageKind::Html {
            continue;
        }
        let base = Url::parse(&ws.url(p)).unwrap();
        for link in extract_links(&bytes, &base) {
            let Some(&t) = index.get(&link) else {
                panic!("extracted link {link} not in URL index");
            };
            if !seen[t as usize] {
                seen[t as usize] = true;
                queue.push_back(t);
            }
        }
    }
    (crawled, relevant)
}

#[test]
fn content_mode_bfs_matches_graph_bfs() {
    let ws = space();
    let (crawled, _) = content_mode_crawl(&ws);
    // Metadata-mode breadth-first crawls the whole space; the
    // byte-level pipeline must find exactly the same URLs.
    assert_eq!(crawled, ws.num_pages() as u64);
}

#[test]
fn content_mode_classification_close_to_truth() {
    let ws = space();
    let (_, relevant_judged) = content_mode_crawl(&ws);
    let truth = ws.total_relevant() as u64;
    // META + detector over real bytes: small error from mislabeled pages
    // whose detector verdict saves them (or not).
    let err = (relevant_judged as f64 - truth as f64).abs() / truth as f64;
    assert!(
        err < 0.06,
        "byte-level relevant count {relevant_judged} vs ground truth {truth}"
    );
}

#[test]
fn extracted_links_equal_graph_outlinks() {
    let ws = space();
    for p in ws.page_ids().step_by(7) {
        if !ws.meta(p).is_ok_html() {
            continue;
        }
        let bytes = ws.synthesize_page(p);
        let base = Url::parse(&ws.url(p)).unwrap();
        let got: std::collections::HashSet<String> =
            extract_links(&bytes, &base).into_iter().collect();
        let want: std::collections::HashSet<String> = ws
            .outlinks(p)
            .iter()
            .map(|&t| normalize(&Url::parse(&ws.url(t)).unwrap()))
            .collect();
        assert_eq!(got, want, "page {p}");
    }
}

#[test]
fn detector_and_meta_classifiers_agree_with_bytes() {
    // The DetectorClassifier (used by the simulator) must agree with
    // running the detector manually over the same synthesized bytes.
    let ws = space();
    let det = DetectorClassifier::target(ws.target_language());
    for p in ws.page_ids().step_by(11) {
        if !ws.meta(p).is_ok_html() {
            continue;
        }
        let manual = detect(&ws.synthesize_page(p)).language() == Some(ws.target_language());
        let via_classifier = det.relevance(&ws, p) > 0.5;
        assert_eq!(manual, via_classifier, "page {p}");
    }
}

#[test]
fn queue_accepts_full_space_admissions() {
    // The queue used by the simulator handles the whole space's worth of
    // admissions with exact FIFO-within-priority semantics.
    let ws = space();
    let mut q = langcrawl::core::queue::UrlQueue::new(ws.num_pages(), 3);
    for p in ws.page_ids() {
        q.push(Entry {
            page: p,
            priority: (p % 3) as u8,
            distance: 0,
        });
    }
    let mut last_priority = 0u8;
    let mut count = 0usize;
    while let Some(e) = q.pop() {
        assert!(e.priority >= last_priority);
        last_priority = e.priority;
        count += 1;
    }
    assert_eq!(count, ws.num_pages());
}
