//! The paper's Figure 1, literally.
//!
//! Fig. 1 illustrates the limited-distance strategy with two chain
//! diagrams: a relevant page followed by runs of irrelevant pages
//! (n = 1, 2, …) ending in relevant pages again. With budget N the
//! crawler must traverse every run of length ≤ N and stop inside any
//! run longer than N. These tests build those exact diagrams with the
//! [`langcrawl::webgraph::builder::WebSpaceBuilder`] and drive the real
//! simulator over them.

use langcrawl::prelude::*;
use langcrawl::webgraph::builder::WebSpaceBuilder;
use langcrawl::webgraph::PageId;

/// Build one Fig.-1 path: seed (relevant) → d irrelevant pages →
/// relevant terminal. Returns (space, terminal id).
fn chain_space(d: usize) -> (WebSpace, PageId) {
    let mut b = WebSpaceBuilder::new(Language::Thai);
    b.host("www.start.co.th", Language::Thai);
    let seed = b.page(Language::Thai);
    b.seed(seed);
    b.host("www.foreign.com", Language::Other);
    let mut prev = seed;
    for _ in 0..d {
        let irr = b.page(Language::Other);
        b.link(prev, irr);
        prev = irr;
    }
    b.host("www.island.co.th", Language::Thai);
    let terminal = b.page(Language::Thai);
    b.link(prev, terminal);
    (b.build(), terminal)
}

fn crawl(ws: &WebSpace, strategy: &mut dyn Strategy) -> CrawlReport {
    Simulator::new(ws, SimConfig::default().with_visit_recording())
        .run(strategy, &MetaClassifier::target(Language::Thai))
}

/// Fig. 1, upper diagram (N = 2): runs of 1 and 2 irrelevant pages are
/// traversed; a run of 3 is not.
#[test]
fn figure1_n2_semantics() {
    for (depth, reachable) in [(1usize, true), (2, true), (3, false)] {
        let (ws, terminal) = chain_space(depth);
        let mut strat = LimitedDistanceStrategy::non_prioritized(2);
        let r = crawl(&ws, &mut strat);
        let visited = r.visited.contains(&terminal);
        assert_eq!(
            visited, reachable,
            "depth {depth} with N=2: visited={visited}"
        );
    }
}

/// Fig. 1, lower diagram (N = 3): the run of 3 becomes traversable.
#[test]
fn figure1_n3_semantics() {
    for (depth, reachable) in [(2usize, true), (3, true), (4, false)] {
        let (ws, terminal) = chain_space(depth);
        let mut strat = LimitedDistanceStrategy::non_prioritized(3);
        let r = crawl(&ws, &mut strat);
        assert_eq!(r.visited.contains(&terminal), reachable, "depth {depth}");
    }
}

/// A relevant page mid-path resets the irrelevant run — the "consecutive"
/// in "N consecutive irrelevant pages".
#[test]
fn relevant_page_resets_the_run() {
    // seed → irr → irr → REL → irr → irr → terminal, with N = 2:
    // both 2-runs are within budget because the middle page resets.
    let mut b = WebSpaceBuilder::new(Language::Thai);
    b.host("www.start.co.th", Language::Thai);
    let seed = b.page(Language::Thai);
    b.seed(seed);
    b.host("www.bridge.com", Language::Other);
    let i1 = b.page(Language::Other);
    let i2 = b.page(Language::Other);
    let i3 = b.page(Language::Other);
    let i4 = b.page(Language::Other);
    b.host("www.middle.co.th", Language::Thai);
    let mid = b.page(Language::Thai);
    b.host("www.end.co.th", Language::Thai);
    let end = b.page(Language::Thai);
    b.chain(&[seed, i1, i2, mid, i3, i4, end]);
    let ws = b.build();

    let r = crawl(&ws, &mut LimitedDistanceStrategy::non_prioritized(2));
    assert!(
        r.visited.contains(&end),
        "reset run must allow the full path"
    );

    // Without the reset (no relevant middle page) the same total of four
    // irrelevant pages exceeds N = 2.
    let (ws2, terminal2) = chain_space(4);
    let r2 = crawl(&ws2, &mut LimitedDistanceStrategy::non_prioritized(2));
    assert!(!r2.visited.contains(&terminal2));
}

/// Hard-focused is the N = 0 diagram: it fetches the first irrelevant
/// page but never expands it.
#[test]
fn hard_focused_is_n_zero() {
    let (ws, terminal) = chain_space(1);
    let r = crawl(&ws, &mut SimpleStrategy::hard());
    assert!(!r.visited.contains(&terminal));
    // The irrelevant page itself was fetched (links from the relevant
    // seed are admitted) — it is its OUTLINKS that were discarded.
    assert_eq!(r.crawled, 2);
}

/// Soft-focused traverses any depth eventually.
#[test]
fn soft_focused_has_no_depth_limit() {
    let (ws, terminal) = chain_space(7);
    let r = crawl(&ws, &mut SimpleStrategy::soft());
    assert!(r.visited.contains(&terminal));
    assert!((r.final_coverage() - 1.0).abs() < 1e-12);
}

/// The prioritized mode crawls near-relevant URLs first: on a diamond
/// with a short and a long path, the short path's pages are fetched
/// earlier.
#[test]
fn prioritized_mode_orders_by_distance() {
    let mut b = WebSpaceBuilder::new(Language::Thai);
    b.host("www.start.co.th", Language::Thai);
    let seed = b.page(Language::Thai);
    b.seed(seed);
    b.host("www.far.com", Language::Other);
    let far1 = b.page(Language::Other);
    let far2 = b.page(Language::Other);
    b.host("www.near.co.th", Language::Thai);
    let near = b.page(Language::Thai);
    // seed links to both a relevant page and a 2-deep irrelevant chain.
    b.link(seed, far1);
    b.link(far1, far2);
    b.link(seed, near);
    let ws = b.build();

    let r = crawl(&ws, &mut LimitedDistanceStrategy::prioritized(3));
    let pos = |p: PageId| r.visited.iter().position(|&v| v == p).unwrap();
    assert!(
        pos(near) < pos(far2),
        "distance-0 page must be fetched before the distance-2 page"
    );
}
