//! The paper's experimental claims, asserted end-to-end at test scale.
//! Each test is a miniature of one figure/table of §5 (the full-scale
//! regeneration lives in `crates/bench/src/bin`).

use langcrawl::prelude::*;
use langcrawl::webgraph::DatasetStats;

fn thai(n: u32, seed: u64) -> WebSpace {
    GeneratorConfig::thai_like().scaled(n).build(seed)
}

fn run(ws: &WebSpace, s: &mut dyn Strategy) -> CrawlReport {
    let mut sim = Simulator::new(ws, SimConfig::default());
    sim.run(s, &MetaClassifier::target(ws.target_language()))
}

/// Table 3: dataset characteristics.
#[test]
fn table3_dataset_ratios() {
    let th = DatasetStats::compute(&thai(30_000, 1));
    assert!(
        (th.relevance_ratio - 0.35).abs() < 0.05,
        "thai {:?}",
        th.relevance_ratio
    );
    let jp = DatasetStats::compute(&GeneratorConfig::japanese_like().scaled(30_000).build(1));
    assert!(
        (jp.relevance_ratio - 0.71).abs() < 0.06,
        "jp {:?}",
        jp.relevance_ratio
    );
    assert!(jp.relevance_ratio > th.relevance_ratio);
}

/// Fig. 3: focused strategies beat breadth-first early; soft reaches
/// 100% coverage; hard truncates.
#[test]
fn fig3_simple_strategy_thai() {
    let ws = thai(25_000, 2);
    let early = ws.num_pages() as u64 / 7;
    let bf = run(&ws, &mut BreadthFirst::new());
    let hard = run(&ws, &mut SimpleStrategy::hard());
    let soft = run(&ws, &mut SimpleStrategy::soft());

    assert!(hard.harvest_at(early) > bf.harvest_at(early));
    assert!(soft.harvest_at(early) > bf.harvest_at(early));
    assert!(
        soft.final_coverage() > 0.999,
        "soft {}",
        soft.final_coverage()
    );
    assert!(
        (0.5..0.9).contains(&hard.final_coverage()),
        "hard {}",
        hard.final_coverage()
    );
}

/// Fig. 4: the Japanese-like space is so language-specific that even
/// breadth-first harvests high, and focusing adds far less than on Thai.
#[test]
fn fig4_japanese_high_specificity() {
    let cfg = SimConfig::default().with_url_filter();
    let run_f = |ws: &WebSpace, s: &mut dyn Strategy| {
        Simulator::new(ws, cfg.clone()).run(s, &MetaClassifier::target(ws.target_language()))
    };

    let jp = GeneratorConfig::japanese_like().scaled(25_000).build(2);
    let jp_early = jp.num_pages() as u64 / 5;
    let jp_bf = run_f(&jp, &mut BreadthFirst::new());
    let jp_hard = run_f(&jp, &mut SimpleStrategy::hard());

    let th = thai(25_000, 2);
    let th_early = th.num_pages() as u64 / 5;
    let th_bf = run_f(&th, &mut BreadthFirst::new());
    let th_hard = run_f(&th, &mut SimpleStrategy::hard());

    // Breadth-first alone already harvests high on Japanese (paper: >70%).
    assert!(
        jp_bf.harvest_at(jp_early) > 0.55,
        "jp bf early harvest {}",
        jp_bf.harvest_at(jp_early)
    );
    // …and much higher than on Thai.
    assert!(jp_bf.harvest_at(jp_early) > th_bf.harvest_at(th_early) + 0.15);
    // Focusing buys proportionally less on Japanese than on Thai.
    let jp_gain = jp_hard.harvest_at(jp_early) / jp_bf.harvest_at(jp_early);
    let th_gain = th_hard.harvest_at(th_early) / th_bf.harvest_at(th_early);
    assert!(
        th_gain > jp_gain,
        "thai relative gain {th_gain} should exceed japanese {jp_gain}"
    );
}

/// Fig. 5: soft's URL queue dwarfs hard's.
#[test]
fn fig5_queue_blowup() {
    let ws = thai(25_000, 3);
    let soft = run(&ws, &mut SimpleStrategy::soft());
    let hard = run(&ws, &mut SimpleStrategy::hard());
    assert!(
        soft.max_queue > 3 * hard.max_queue,
        "soft {} hard {}",
        soft.max_queue,
        hard.max_queue
    );
}

/// Fig. 6: non-prioritized limited distance — queue and coverage grow
/// with N, early harvest falls with N.
#[test]
fn fig6_non_prioritized_limited() {
    let ws = thai(25_000, 4);
    let early = ws.num_pages() as u64 / 6;
    let reports: Vec<CrawlReport> = (1..=4u8)
        .map(|n| run(&ws, &mut LimitedDistanceStrategy::non_prioritized(n)))
        .collect();
    for w in reports.windows(2) {
        assert!(w[0].max_queue < w[1].max_queue, "queue must grow with N");
        assert!(
            w[0].final_coverage() <= w[1].final_coverage() + 1e-9,
            "coverage must grow with N"
        );
    }
    assert!(
        reports[0].harvest_at(early) > reports[3].harvest_at(early),
        "harvest must fall from N=1 ({}) to N=4 ({})",
        reports[0].harvest_at(early),
        reports[3].harvest_at(early)
    );
}

/// Fig. 7: prioritized limited distance — harvest no longer degrades
/// with N (the paper's conclusion).
#[test]
fn fig7_prioritized_limited() {
    let ws = thai(25_000, 5);
    let early = ws.num_pages() as u64 / 6;
    let harvests: Vec<f64> = (1..=4u8)
        .map(|n| run(&ws, &mut LimitedDistanceStrategy::prioritized(n)).harvest_at(early))
        .collect();
    let spread = harvests.iter().copied().fold(f64::MIN, f64::max)
        - harvests.iter().copied().fold(f64::MAX, f64::min);
    assert!(
        spread < 0.08,
        "prioritized harvest spread {spread} ({harvests:?})"
    );
}

/// The headline comparison across figures: prioritized mode keeps the
/// harvest that non-prioritized mode loses at large N.
#[test]
fn prioritized_beats_non_prioritized_at_large_n() {
    let ws = thai(25_000, 6);
    let early = ws.num_pages() as u64 / 6;
    let non = run(&ws, &mut LimitedDistanceStrategy::non_prioritized(4));
    let pri = run(&ws, &mut LimitedDistanceStrategy::prioritized(4));
    assert!(
        pri.harvest_at(early) > non.harvest_at(early),
        "prioritized {} vs non-prioritized {}",
        pri.harvest_at(early),
        non.harvest_at(early)
    );
    // Both reach the same structural coverage.
    assert!((pri.final_coverage() - non.final_coverage()).abs() < 0.03);
}

/// Determinism across the whole experiment stack: same seed, same curves.
#[test]
fn experiments_are_reproducible() {
    let a = run(&thai(10_000, 7), &mut SimpleStrategy::soft());
    let b = run(&thai(10_000, 7), &mut SimpleStrategy::soft());
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.max_queue, b.max_queue);
}

/// Seed robustness: the Fig. 3 ordering holds across generator seeds.
#[test]
fn fig3_ordering_robust_across_seeds() {
    for seed in [11u64, 22, 33] {
        let ws = thai(15_000, seed);
        let early = ws.num_pages() as u64 / 7;
        let bf = run(&ws, &mut BreadthFirst::new());
        let soft = run(&ws, &mut SimpleStrategy::soft());
        assert!(
            soft.harvest_at(early) > bf.harvest_at(early),
            "seed {seed}: soft {} bf {}",
            soft.harvest_at(early),
            bf.harvest_at(early)
        );
        assert!(soft.final_coverage() > 0.999, "seed {seed}");
    }
}
