//! # langcrawl — language-specific web crawling, simulated
//!
//! A full Rust reproduction of **“Simulation Study of Language Specific Web
//! Crawling”** (K. Somboonviwat, T. Tamura, M. Kitsuregawa; DEWS/ICDE 2005).
//!
//! The paper adapts *focused crawling* to the problem national web-archiving
//! projects face: harvesting all pages written in one language from the
//! borderless Web. It evaluates crawl-ordering strategies on a trace-driven
//! **web crawling simulator** instead of the live Web. This workspace
//! re-implements the whole stack:
//!
//! * [`charset`] — character-encoding detection (the language classifier):
//!   escape-sequence, validity-state-machine, and byte-distribution probers
//!   for the Japanese and Thai encodings of Table 1, plus algorithmic
//!   encoders used to synthesize realistic page bytes.
//! * [`html`] — tag tokenizer, `<meta>` charset extraction, link extraction.
//! * [`url`] — URL parsing, relative resolution, and canonicalization.
//! * [`webgraph`] — a seeded synthetic web-space generator with explicit
//!   language-locality structure, standing in for the paper's proprietary
//!   2004 Thai/Japanese crawl logs, plus the crawl-log format itself.
//! * [`core`] — the simulator (simulator / visitor / classifier / observer /
//!   URL queue / link DB of the paper's Fig. 2), every crawling strategy the
//!   paper evaluates (breadth-first; hard- and soft-focused; prioritized and
//!   non-prioritized limited-distance), the extension strategies its related
//!   -work section describes, crawl metrics, and an event-driven timing
//!   model (the paper's stated future work).
//!
//! ## Quickstart
//!
//! ```
//! use langcrawl::prelude::*;
//!
//! // A small Thai-like virtual web space (35% of pages are in-language).
//! let space = GeneratorConfig::thai_like().scaled(2_000).build(42);
//!
//! // Crawl it with the paper's soft-focused strategy.
//! let mut sim = Simulator::new(&space, SimConfig::default());
//! let report = sim.run(
//!     &mut SimpleStrategy::soft(),
//!     &MetaClassifier::target(Language::Thai),
//! );
//! assert!(report.final_coverage() > 0.9); // soft mode approaches full recall
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

pub use langcrawl_charset as charset;
pub use langcrawl_core as core;
pub use langcrawl_html as html;
pub use langcrawl_url as url;
pub use langcrawl_webgraph as webgraph;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use langcrawl_charset::{detect, Charset, Language};
    pub use langcrawl_core::{
        classifier::{Classifier, DetectorClassifier, MetaClassifier, OracleClassifier},
        content::{ContentClassifier, ContentConfig, ContentSimulator},
        metrics::CrawlReport,
        sim::{SimConfig, Simulator},
        strategy::{
            BacklinkCount, BreadthFirst, CombinedStrategy, ContextGraphStrategy, HitsStrategy,
            LimitedDistanceStrategy, OnlinePageRank, SimpleStrategy, Strategy, TldScopeStrategy,
        },
        timing::{run_timed, TimingConfig},
    };
    pub use langcrawl_webgraph::{DatasetStats, GeneratorConfig, WebSpace};
}
