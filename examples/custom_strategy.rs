//! Writing your own crawl strategy against the public `Strategy` trait.
//!
//! Implements a "host-gated" focused strategy the paper does not have:
//! like soft-focused, but it remembers per host how many relevant pages
//! it has seen there, and demotes links pointing into hosts that have
//! produced only irrelevant pages so far. Then it races the built-ins.
//!
//! ```sh
//! cargo run --release --example custom_strategy
//! ```

use langcrawl::core::queue::Entry;
use langcrawl::core::strategy::PageView;
use langcrawl::prelude::*;
use langcrawl::webgraph::WebSpace as Space;
use std::collections::HashMap;

/// Soft-focused with per-host reputation: three priority levels —
/// 0: link from a relevant page into a host that has already yielded
///    relevant pages (exploit),
/// 1: link from a relevant page into a cold host (explore),
/// 2: link from an irrelevant page (as soft-focused's low tier).
struct HostGated<'a> {
    ws: &'a Space,
    relevant_seen: HashMap<u32, u32>,
    irrelevant_seen: HashMap<u32, u32>,
}

impl<'a> HostGated<'a> {
    fn new(ws: &'a Space) -> Self {
        HostGated {
            ws,
            relevant_seen: HashMap::new(),
            irrelevant_seen: HashMap::new(),
        }
    }

    /// Has this host ever yielded a relevant page?
    fn proven(&self, host: u32) -> bool {
        self.relevant_seen.get(&host).copied().unwrap_or(0) > 0
    }
}

impl Strategy for HostGated<'_> {
    fn name(&self) -> String {
        "host-gated soft".into()
    }

    fn levels(&self) -> usize {
        3
    }

    fn admit(&mut self, view: &PageView<'_>, out: &mut Vec<Entry>) {
        let host = self.ws.meta(view.page).host;
        if view.relevance > 0.5 {
            *self.relevant_seen.entry(host).or_default() += 1;
        } else {
            *self.irrelevant_seen.entry(host).or_default() += 1;
        }
        for &t in view.outlinks {
            // Exploit proven hosts first; explore cold hosts second;
            // links from irrelevant pages last (as in soft-focused).
            let priority = if view.relevance <= 0.5 {
                2
            } else if self.proven(self.ws.meta(t).host) {
                0
            } else {
                1
            };
            out.push(Entry {
                page: t,
                priority,
                distance: 0,
            });
        }
    }
}

fn main() {
    let space = GeneratorConfig::thai_like().scaled(40_000).build(7);
    let classifier = MetaClassifier::target(Language::Thai);
    let early = space.num_pages() as u64 / 20;

    println!(
        "{:<22} {:>13} {:>10} {:>10} {:>10}",
        "strategy", "harvest@1/20", "harvest", "coverage", "max queue"
    );
    let run = |mut s: Box<dyn Strategy + '_>| {
        let mut sim = Simulator::new(&space, SimConfig::default());
        let r = sim.run(s.as_mut(), &classifier);
        println!(
            "{:<22} {:>12.1}% {:>9.1}% {:>9.1}% {:>10}",
            r.strategy,
            100.0 * r.harvest_at(early),
            100.0 * r.final_harvest(),
            100.0 * r.final_coverage(),
            r.max_queue
        );
        r
    };

    run(Box::new(BreadthFirst::new()));
    let soft = run(Box::new(SimpleStrategy::soft()));
    let gated = run(Box::new(HostGated::new(&space)));

    println!(
        "\nhost-gated vs plain soft at the 1/20 mark: {:+.1} points of harvest, \
         same 100% coverage guarantee ({} vs {} crawled)",
        100.0 * (gated.harvest_at(early) - soft.harvest_at(early)),
        gated.crawled,
        soft.crawled
    );
}
