//! The timing extension: what politeness actually costs an archive crawl.
//!
//! Runs the event-driven simulator (per-server access intervals +
//! transfer delays — the paper's §6 future work) and answers the
//! operational question a crawl engineer asks: "how long will the crawl
//! take, and how many connections are worth renting?"
//!
//! ```sh
//! cargo run --release --example politeness_timing
//! ```

use langcrawl::core::timing::{run_timed, TimingConfig};
use langcrawl::prelude::*;

fn main() {
    let space = GeneratorConfig::thai_like().scaled(20_000).build(11);
    let classifier = MetaClassifier::target(Language::Thai);
    println!(
        "space: {} URLs on {} hosts; strategy: prioritized limited-distance N=2\n",
        space.num_pages(),
        space.num_hosts()
    );

    println!(
        "{:>12} {:>12} {:>14} {:>10} {:>12}",
        "connections", "delay [ms]", "wall clock", "pages/s", "utilization"
    );
    for connections in [8usize, 32, 128] {
        for delay in [500u64, 2_000] {
            let cfg = TimingConfig {
                connections,
                per_server_delay_ms: delay,
                ..TimingConfig::default()
            };
            let mut strat = LimitedDistanceStrategy::prioritized(2);
            let r = run_timed(&space, &cfg, &mut strat, &classifier);
            println!(
                "{:>12} {:>12} {:>13.0}s {:>10.1} {:>11.1}%",
                connections,
                delay,
                r.wall_clock_ms as f64 / 1000.0,
                r.pages_per_second(),
                100.0 * r.utilization
            );
        }
    }

    println!(
        "\nthe crawl is politeness-bound, not bandwidth-bound: beyond a few dozen\n\
         connections, extra parallelism only idles (utilization collapses) because\n\
         each host still serves at most one request per delay interval — the\n\
         phenomenon the paper's untimed simulator could not express (§4, §6)."
    );
}
