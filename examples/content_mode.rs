//! Content-mode crawling: the whole stack at the byte level.
//!
//! Everything the crawler learns here, it learns the way a real crawler
//! would: pages are rendered to HTML bytes in their true charset, the
//! classifier reads the META tag and runs the byte-distribution
//! detector, links are extracted from the markup and resolved as URL
//! strings. Compare the result with the trace-replay (metadata-mode)
//! simulator — they must tell the same story.
//!
//! ```sh
//! cargo run --release --example content_mode
//! ```

use langcrawl::core::content::{ContentClassifier, ContentConfig, ContentSimulator};
use langcrawl::prelude::*;

fn main() {
    let space = GeneratorConfig::thai_like().scaled(8_000).build(21);
    println!(
        "space: {} URLs, {} relevant Thai pages\n",
        space.num_pages(),
        space.total_relevant()
    );

    // Metadata mode: replay recorded charsets (the paper's §4 simulator).
    let mut meta_sim = Simulator::new(&space, SimConfig::default());
    let replay = meta_sim.run(
        &mut SimpleStrategy::hard(),
        &MetaClassifier::target(Language::Thai),
    );

    // Content mode, META-only bytes path: must agree exactly.
    let mut content_sim = ContentSimulator::new(
        &space,
        ContentConfig {
            classifier: ContentClassifier::MetaOnly,
            ..ContentConfig::default()
        },
    );
    let bytes_meta = content_sim.run(&mut SimpleStrategy::hard());

    // Content mode, composite classifier: the detector rescues pages the
    // META label lies about.
    let mut composite_sim = ContentSimulator::new(&space, ContentConfig::default());
    let bytes_composite = composite_sim.run(&mut SimpleStrategy::hard());

    println!(
        "{:<40} {:>9} {:>9} {:>9}",
        "hard-focused crawl", "crawled", "harvest", "coverage"
    );
    for r in [&replay, &bytes_meta, &bytes_composite] {
        println!(
            "{:<40} {:>9} {:>8.1}% {:>8.1}%",
            format!("{} [{}]", r.strategy, r.classifier),
            r.crawled,
            100.0 * r.final_harvest(),
            100.0 * r.final_coverage()
        );
    }

    assert_eq!(
        replay.samples, bytes_meta.samples,
        "modes must agree exactly"
    );
    println!(
        "\nmetadata replay and byte-level META crawl agree sample-for-sample;\n\
         the composite classifier adds {:.1} coverage points by detecting the\n\
         true encoding of mislabeled pages (paper §3, observation 3).",
        100.0 * (bytes_composite.final_coverage() - bytes_meta.final_coverage())
    );
}
