//! The language classifier in isolation — §3.2 of the paper, end to end.
//!
//! Encodes the same Japanese and Thai sample text into every charset of
//! the paper's Table 1, runs the composite byte detector, and shows the
//! META-tag path including the mislabeling failure mode the paper's §3
//! observes ("Thai web pages are mislabeled as non-Thai web pages").
//!
//! ```sh
//! cargo run --release --example charset_detection
//! ```

use langcrawl::charset::decode::decode;
use langcrawl::charset::encode::{
    encode_japanese, encode_thai, japanese_demo_tokens, thai_demo_tokens,
};
use langcrawl::html::extract_meta_charset;
use langcrawl::prelude::*;

fn main() {
    // --- the byte-distribution detector ---------------------------------
    println!("byte-distribution detection (the Mozilla-detector path):\n");
    let ja = japanese_demo_tokens();
    let ja: Vec<_> = ja.iter().cycle().take(ja.len() * 6).copied().collect();
    let th = thai_demo_tokens();
    let th: Vec<_> = th.iter().cycle().take(th.len() * 6).copied().collect();

    println!(
        "  Japanese sample: {}",
        decode(&encode_japanese(&ja[..18], Charset::Utf8), Charset::Utf8)
    );
    for cs in [
        Charset::EucJp,
        Charset::ShiftJis,
        Charset::Iso2022Jp,
        Charset::Utf8,
    ] {
        let bytes = encode_japanese(&ja, cs);
        let d = detect(&bytes);
        println!(
            "    encoded as {:<12} ({:>4} bytes) -> detected {:<12} confidence {:.2}  language {:?}",
            cs.label(),
            bytes.len(),
            d.charset.label(),
            d.confidence,
            d.language()
        );
    }
    println!(
        "\n  Thai sample: {}",
        decode(&encode_thai(&th[..20], Charset::Utf8), Charset::Utf8)
    );
    for cs in [Charset::Tis620, Charset::Utf8] {
        let bytes = encode_thai(&th, cs);
        let d = detect(&bytes);
        println!(
            "    encoded as {:<12} ({:>4} bytes) -> detected {:<12} confidence {:.2}  language {:?}",
            cs.label(),
            bytes.len(),
            d.charset.label(),
            d.confidence,
            d.language()
        );
    }

    // --- the META-tag path -----------------------------------------------
    println!("\nMETA-tag extraction (the paper's Thai-dataset path):\n");
    let honest = br#"<html><head>
      <meta http-equiv="Content-Type" content="text/html; charset=TIS-620">
      </head><body>...</body></html>"#;
    println!(
        "  honest page      -> {:?}",
        extract_meta_charset(honest).map(|c| c.label())
    );

    // Observation 3 of the paper's §3: mislabeled pages. The body is
    // genuine Thai (TIS-620 bytes) but the author's editor stamped a
    // Western charset into the template.
    let mut mislabeled = Vec::new();
    mislabeled.extend_from_slice(
        br#"<html><head><meta http-equiv="content-type" content="text/html; charset=iso-8859-1"></head><body>"#,
    );
    mislabeled.extend_from_slice(&encode_thai(&th, Charset::Tis620));
    mislabeled.extend_from_slice(b"</body></html>");

    let label = extract_meta_charset(&mislabeled);
    let detected = detect(&mislabeled);
    println!(
        "  mislabeled page  -> META says {:?}; the detector says {} ({:?})",
        label.map(|c| c.label()),
        detected.charset.label(),
        detected.language()
    );
    println!(
        "\n  a META-only classifier drops this page from the archive; the detector\n\
         rescues it — which is why the paper used the detector wherever the tool\n\
         supported the language (§3.2)."
    );
}
