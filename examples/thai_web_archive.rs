//! National web-archiving scenario — the paper's motivating application.
//!
//! A (fictional) Thai national library wants to archive the Thai web with
//! a fixed memory budget for the URL queue. This example:
//!
//! 1. builds a Thai-like web space and writes it to a crawl log on disk
//!    (the trace-driven workflow of the paper's Fig. 2);
//! 2. replays the log into a fresh simulator (proving the archive
//!    pipeline is reproducible from logs alone);
//! 3. sweeps the limited-distance parameter N to find the smallest
//!    tunnel budget that clears the library's 90%-coverage mandate, and
//!    reports the queue memory each choice costs.
//!
//! ```sh
//! cargo run --release --example thai_web_archive
//! ```

use langcrawl::prelude::*;
use langcrawl::webgraph::logs::{read_log, write_log};
use std::io::BufReader;

fn main() -> std::io::Result<()> {
    // --- 1. acquire the trace -------------------------------------------
    let space = GeneratorConfig::thai_like().scaled(40_000).build(2026);
    let log_path = std::env::temp_dir().join("thai_archive_crawl.log");
    write_log(&space, std::fs::File::create(&log_path)?)?;
    println!(
        "crawl log written: {} ({} URLs, {} relevant Thai pages)",
        log_path.display(),
        space.num_pages(),
        space.total_relevant()
    );

    // --- 2. replay it ----------------------------------------------------
    let replayed = read_log(BufReader::new(std::fs::File::open(&log_path)?))?;
    assert_eq!(replayed.num_pages(), space.num_pages());
    assert_eq!(replayed.total_relevant(), space.total_relevant());
    println!("log replayed into an identical virtual web space\n");

    // --- 3. pick N under the memory budget --------------------------------
    // The library's frontier store holds at most half of what soft-focused
    // crawling would hoard. Which tunnel budget N fits, and how much of the
    // Thai web does it buy?
    let classifier = MetaClassifier::target(Language::Thai);
    let mut sim = Simulator::new(&replayed, SimConfig::default());
    let soft = sim.run(&mut SimpleStrategy::soft(), &classifier);
    let budget = soft.max_queue / 2;
    println!(
        "soft-focused reference: coverage {:.1}%, peak queue {} URLs",
        100.0 * soft.final_coverage(),
        soft.max_queue
    );
    println!("frontier memory budget: {budget} URLs (half of soft)\n");

    println!(
        "{:<30} {:>9} {:>9} {:>10}  fits budget?",
        "strategy", "harvest", "coverage", "max queue"
    );
    let mut chosen: Option<(u8, CrawlReport)> = None;
    for n in 1..=5u8 {
        let mut sim = Simulator::new(&replayed, SimConfig::default());
        let mut strat = LimitedDistanceStrategy::non_prioritized(n);
        let report = sim.run(&mut strat, &classifier);
        let fits = report.max_queue <= budget;
        println!(
            "{:<30} {:>8.1}% {:>8.1}% {:>10}  {}",
            report.strategy,
            100.0 * report.final_harvest(),
            100.0 * report.final_coverage(),
            report.max_queue,
            if fits { "yes" } else { "no" }
        );
        if fits {
            chosen = Some((n, report)); // keep the largest fitting N
        }
    }

    match chosen {
        Some((n, report)) => println!(
            "\narchive plan: limited-distance with N={n} — {:.1}% of the Thai web \
             within {:.0}% of soft-focused's frontier memory (paper §5.2.2: \
             \"the URL queue can be kept compact by specifying a suitable value \
             of parameter N\")",
            100.0 * report.final_coverage(),
            100.0 * report.max_queue as f64 / soft.max_queue as f64
        ),
        None => println!("\nno tunnel budget fits; the library buys RAM"),
    }
    std::fs::remove_file(&log_path).ok();
    Ok(())
}
