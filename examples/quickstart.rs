//! Quickstart: generate a Thai-like virtual web space, crawl it with the
//! paper's strategies, and print what each achieved.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use langcrawl::prelude::*;

fn main() {
    // A reduced-scale replica of the paper's Thai dataset: ~35% of HTML
    // pages are Thai, most URLs are dead links or non-HTML resources,
    // and part of the Thai web hides behind non-Thai "gateway" pages.
    let space = GeneratorConfig::thai_like().scaled(30_000).build(42);
    println!(
        "virtual web space: {} URLs, {} hosts, {} links, {} relevant pages\n",
        space.num_pages(),
        space.num_hosts(),
        space.num_edges(),
        space.total_relevant()
    );

    // The classifier judges language from the META charset declaration,
    // exactly as the paper did for its Thai experiments (§3.2).
    let classifier = MetaClassifier::target(Language::Thai);

    let mut strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(BreadthFirst::new()),
        Box::new(SimpleStrategy::hard()),
        Box::new(SimpleStrategy::soft()),
        Box::new(LimitedDistanceStrategy::prioritized(1)),
    ];

    println!(
        "{:<30} {:>9} {:>9} {:>9} {:>10}",
        "strategy", "crawled", "harvest", "coverage", "max queue"
    );
    for s in &mut strategies {
        let mut sim = Simulator::new(&space, SimConfig::default());
        let report = sim.run(s.as_mut(), &classifier);
        println!(
            "{:<30} {:>9} {:>8.1}% {:>8.1}% {:>10}",
            report.strategy,
            report.crawled,
            100.0 * report.final_harvest(),
            100.0 * report.final_coverage(),
            report.max_queue
        );
    }

    println!(
        "\nReading the table the paper's way: soft-focused finds every Thai page\n\
         but hoards URLs; hard-focused is frugal but blind past non-Thai pages;\n\
         prioritized limited-distance tunnels through up to N of them and keeps\n\
         the queue in between."
    );
}
