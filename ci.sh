#!/usr/bin/env sh
# The full CI gate, runnable locally. The workspace has zero external
# dependencies, so every step runs --offline by design — if a dependency
# ever sneaks in, the build step fails here first.
set -eu

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test --workspace -q --offline

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> ci: all green"
