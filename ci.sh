#!/usr/bin/env sh
# The full CI gate, runnable locally. The workspace has zero external
# dependencies, so every step runs --offline by design — if a dependency
# ever sneaks in, the build step fails here first.
set -eu

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test --workspace -q --offline

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

# Smoke-scale bench trajectory: exercises the parallel-generation parity
# and sink-overhead gates (the bench exits nonzero on a regression) and
# leaves BENCH_<sha>.json at the repo root for archival.
echo "==> cargo bench microbench --json (smoke scale)"
LANGCRAWL_SCALE=20000 cargo bench -p langcrawl-bench --offline --bench microbench -- --json

echo "==> ci: all green"
