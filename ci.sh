#!/usr/bin/env sh
# The full CI gate, runnable locally. The workspace has zero external
# dependencies, so every step runs --offline by design — if a dependency
# ever sneaks in, the build step fails here first.
set -eu

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test --workspace -q --offline

# The fault/retry layer's pinned suites, named explicitly so a CI log
# shows them running: the zero-fault conformance goldens (bit-identical
# CrawlReports with the fault model disabled), the retry/backoff
# property tests, and the webgraph fault-draw determinism proptests.
echo "==> fault conformance + retry property suites"
cargo test -q --offline -p langcrawl-core --test fault_conformance --test retry_proptests
cargo test -q --offline -p langcrawl-webgraph --test proptests

# Scheduler conformance and shard parity, re-run under explicit
# generation thread counts: the golden hashes in these suites are
# absolute constants, so a pass under every setting proves the K-slot
# schedule (and the sharded frontier behind it) is thread-invariant
# end to end, not merely self-consistent.
echo "==> scheduler conformance + shard parity (LANGCRAWL_THREADS=1,4)"
for threads in 1 4; do
    LANGCRAWL_THREADS=$threads cargo test -q --offline -p langcrawl-core \
        --test sched_conformance --test frontier_accounting
    LANGCRAWL_THREADS=$threads cargo test -q --offline -p langcrawl-core \
        --test proptests sharded_frontier
done

# Checkpoint/resume parity, re-run under both generation thread counts
# like the conformance suites: snapshot at tick T -> drop -> resume must
# be bit-identical to the uninterrupted run for every pinned cell, and
# the codec must reject every corruption with a typed error. The suites
# dump each snapshot they resume from into LANGCRAWL_SNAPSHOT_DIR, so a
# parity failure leaves its fixture behind (CI uploads the directory as
# an artifact on failure).
echo "==> resume parity + snapshot codec (LANGCRAWL_THREADS=1,4)"
mkdir -p target/snapshot-fixtures
for threads in 1 4; do
    LANGCRAWL_THREADS=$threads LANGCRAWL_SNAPSHOT_DIR=target/snapshot-fixtures \
        cargo test -q --offline -p langcrawl-core \
        --test resume_parity --test snapshot_codec
done

# Link-analysis parity, re-run under both generation thread counts: the
# incremental PageRank/HITS engines must produce CrawlReports identical
# to their frozen full-recompute references on the pinned cells, and the
# crawl-graph store must match its naive model, regardless of how many
# threads generated the web space.
echo "==> link-analysis parity + crawl-graph store properties (LANGCRAWL_THREADS=1,4)"
for threads in 1 4; do
    LANGCRAWL_THREADS=$threads cargo test -q --offline -p langcrawl-core \
        --test link_analysis_parity --test linkgraph_props
done

# Determinism & safety lint: the in-tree static analyzer must find
# nothing unsuppressed in the workspace's own sources. The same run
# writes the JSON report and the resolved hot-path call graph
# (deterministic DOT + JSON adjacency) under target/ for CI to archive.
echo "==> langcrawl-lint (self-scan + call graph)"
mkdir -p target
cargo run -q --release --offline -p langcrawl-lint -- \
    --json --graph target/lint-graph . > target/lint-report.json || {
    cargo run -q --release --offline -p langcrawl-lint -- .
    exit 1
}

# Root marker typo guard: --roots exits nonzero if any lint:root marker
# fails to attach to an indexed fn, and the grep cross-check catches a
# marker the parser never even saw. The lint crate itself is excluded —
# its unit tests embed marker text in raw strings — as are the fixture
# trees, which exercise the lint rather than carry workspace contracts.
echo "==> langcrawl-lint --roots (root marker resolution guard)"
cargo run -q --release --offline -p langcrawl-lint -- --roots . > target/lint-roots.txt
declared=$(grep -rE --include='*.rs' --exclude-dir=fixtures --exclude-dir=lint \
    -h '^[[:space:]]*// lint:root\(' crates | wc -l)
resolved=$(wc -l < target/lint-roots.txt)
if [ "$declared" -ne "$resolved" ]; then
    echo "    declared $declared root markers but the resolver saw $resolved:"
    cat target/lint-roots.txt
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

# Steady-state allocation gate: the same microbench compiled with the
# counting allocator must observe ZERO allocations per fetch once the
# engine scratch is warm. This run deliberately omits --json — the
# counting allocator itself perturbs throughput, so its numbers are
# not comparable and must not overwrite the archival trajectory.
echo "==> cargo bench microbench --features count-allocs (steady-state gate)"
LANGCRAWL_SCALE=20000 cargo bench -p langcrawl-bench --offline \
    --features count-allocs --bench microbench

# Smoke-scale bench trajectory: exercises the parallel-generation
# parity, sink-overhead, fault-path-overhead and single-slot
# scheduler-overhead gates (the bench exits nonzero on a regression)
# and leaves BENCH_<sha>.json at the repo root for archival.
echo "==> cargo bench microbench --json (smoke scale)"
LANGCRAWL_SCALE=20000 cargo bench -p langcrawl-bench --offline --bench microbench -- --json

# Trajectory regression gate: compare the fresh BENCH_<sha>.json against
# the most recently committed predecessor. bench_compare fails the build
# if queue, detector, or simulator throughput drops more than 10%.
echo "==> bench_compare (fresh vs committed trajectory)"
fresh="BENCH_$(git rev-parse --short HEAD).json"
baseline=""
for f in $(git ls-files 'BENCH_*.json'); do
    [ "$f" = "$fresh" ] && continue
    if [ -z "$baseline" ] || [ "$(git log -1 --format=%ct -- "$f")" -gt "$(git log -1 --format=%ct -- "$baseline")" ]; then
        baseline=$f
    fi
done
if [ -n "$baseline" ] && [ -f "$fresh" ]; then
    cargo run -q --release --offline -p langcrawl-bench --bin bench_compare -- "$fresh" "$baseline"
elif [ -f "$fresh" ]; then
    # No committed predecessor: the gate itself prints the explicit
    # "no baseline" notice (and exits 0), so the skip is always visible.
    cargo run -q --release --offline -p langcrawl-bench --bin bench_compare -- "$fresh"
else
    echo "    fresh trajectory $fresh missing; comparison skipped"
fi

echo "==> ci: all green"
